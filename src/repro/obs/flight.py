"""The flight recorder: sampled state gauges + a runtime invariant auditor.

The event/span layers (DESIGN.md §7–8) record *happenings*; this module
records *state over time* — exactly what the paper's evaluation plots
(cache occupancy, staging lead, queue depths across disconnection
gaps) — and continuously checks that the stream of happenings is
self-consistent.

Two cooperating pieces:

:class:`GaugeSampler`
    A simulation process that, every ``period`` sim-seconds, reads a
    set of registered gauges (name → zero-argument callable) and emits
    one :class:`~repro.obs.events.GaugeSample` per gauge through the
    simulator's probe.  Samples land on the bus like every other
    event, so they aggregate into
    :class:`~repro.sim.monitor.TimeSeries` timelines inside the
    :class:`~repro.metrics.collector.MetricsCollector`, export to
    JSONL, and replay into *identical* timelines offline.  Sampling is
    off by default and adds **zero hot-path overhead** when off: no
    per-packet work anywhere, only a periodic timer while installed.

:class:`InvariantAuditor`
    A bus subscriber that double-enters the event stream into its own
    books and checks conservation laws as the run progresses: cache
    byte-accounting (Σ stored − Σ evicted == sampled occupancy),
    staging state-machine legality (READY only after PENDING, never
    twice), per-run time monotonicity, gauge sanity and pool balance.
    A failed check produces a structured :class:`InvariantViolation`
    carrying the offending timeline slice; ``strict=True`` raises
    :class:`InvariantViolationError` at the violation site.

Wiring for the standard testbed lives in
:func:`install_flight_recorder`, which registers the default gauge set
(XCache occupancy, staging pipeline depth and Eq. 1 lead, link queue
depths and utilization, client connectivity, kernel/packet pool
levels) against a :class:`~repro.experiments.scenario.TestbedScenario`.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Callable, Optional, TYPE_CHECKING

from repro.obs import events as ev
from repro.obs.bus import EventBus, Stamped
from repro.obs.events import GaugeSample

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import StagingManager
    from repro.experiments.scenario import TestbedScenario
    from repro.sim import Simulator


#: Default sim-time sampling period (seconds).  Coarse enough that a
#: 60-second download costs ~120 samples per gauge, fine enough to
#: resolve the paper's multi-second encounter/gap structure.
DEFAULT_PERIOD = 0.5

#: How many trailing bus events a violation report carries.
TIMELINE_SLICE = 16


class GaugeSampler:
    """Periodically samples registered gauges into the event stream."""

    def __init__(self, sim: "Simulator", period: float = DEFAULT_PERIOD) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self.sim = sim
        self.period = float(period)
        self._gauges: list[tuple[str, Callable[[], float]]] = []
        self._names: set[str] = set()
        self._process = None
        self.samples_taken = 0

    def register(self, name: str, fn: Callable[[], float]) -> "GaugeSampler":
        """Register gauge ``name`` (sampled in registration order)."""
        if name in self._names:
            raise ValueError(f"gauge {name!r} already registered")
        self._names.add(name)
        self._gauges.append((name, fn))
        return self

    @property
    def gauge_names(self) -> list[str]:
        return [name for name, _fn in self._gauges]

    def sample_now(self) -> None:
        """Read every gauge once and emit the batch at ``sim.now``."""
        probe = self.sim.probe
        if not probe.active:
            return
        for name, fn in self._gauges:
            probe.emit(GaugeSample(gauge=name, value=float(fn())))
        self.samples_taken += 1

    def start(self) -> "GaugeSampler":
        """Begin periodic sampling (first batch fires immediately)."""
        if self._process is None:
            self._process = self.sim.process(self._sampler())
        return self

    def _sampler(self):
        while True:
            self.sample_now()
            yield self.sim.timeout(self.period)

    def __repr__(self) -> str:
        state = "running" if self._process is not None else "idle"
        return (
            f"<GaugeSampler {state} period={self.period}s "
            f"gauges={len(self._gauges)} samples={self.samples_taken}>"
        )


# ---------------------------------------------------------------------------
# Invariant auditing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InvariantViolation:
    """One failed conservation/consistency check, with its evidence."""

    invariant: str
    time: float
    run_id: str
    detail: str
    #: The trailing bus events leading up to the violation, already
    #: formatted one per line (newest last).
    timeline: tuple[str, ...] = ()

    def render(self) -> str:
        lines = [
            f"invariant {self.invariant!r} violated at t={self.time:.6f} "
            f"(run {self.run_id}): {self.detail}"
        ]
        if self.timeline:
            lines.append("  timeline slice (oldest first):")
            lines.extend(f"    {entry}" for entry in self.timeline)
        return "\n".join(lines)


class InvariantViolationError(AssertionError):
    """Raised by a strict :class:`InvariantAuditor` on the first violation."""

    def __init__(self, violations: list[InvariantViolation]) -> None:
        self.violations = list(violations)
        super().__init__(
            "\n".join(violation.render() for violation in self.violations)
        )


class InvariantAuditor:
    """Continuously audits the event stream for conservation violations.

    The auditor is deliberately *independent* of the metric mapping in
    :mod:`repro.metrics.collector`: it keeps its own per-event books,
    so :meth:`check_report_parity` is genuine double-entry bookkeeping
    — a drift between the event stream and the collector's counters
    (a mapping-table regression) is itself a violation.

    Invariants checked while events flow:

    ``cache-conservation``
        For every store, the sampled ``cache.occupancy_bytes.<store>``
        gauge must equal Σ ``CacheStored.size_bytes`` − Σ
        ``CacheEvicted.size_bytes`` observed so far, and the running
        balance must never go negative.
    ``staging-state``
        ``ChunkStaged`` (READY) is only legal for a chunk previously
        signalled PENDING (``StagingSignalled``), and never twice —
        duplicate confirmations must surface as
        ``StaleStagingResponse`` instead.
    ``monotonic-time``
        Per run id, event timestamps never decrease.
    ``gauge-sane``
        No registered gauge ever samples negative.
    ``pool-balance``
        The kernel free list can never hold more events than were
        ever allocated (``pool.events_free`` ≤ ``pool.event_allocs``);
        same for the packet pool.
    """

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.violations: list[InvariantViolation] = []
        self.events_audited = 0
        self._bus: Optional[EventBus] = None
        self._timeline: deque[str] = deque(maxlen=TIMELINE_SLICE)
        #: Independent per-event-type counts (double-entry books).
        self.event_counts: Counter[str] = Counter()
        # cache-conservation books.
        self._store_balance: dict[str, int] = {}
        self._stored_cids: set[str] = set()
        # staging-state books.
        self._pending_cids: set[str] = set()
        self._ready_cids: set[str] = set()
        # monotonic-time books.
        self._last_time: dict[str, float] = {}
        # pool-balance books (latest sampled levels).
        self._gauge_latest: dict[str, float] = {}
        # drop accounting.
        self.dropped_packets = 0

    # -- wiring ------------------------------------------------------------

    def attach(self, bus: EventBus) -> "InvariantAuditor":
        self._bus = bus
        bus.subscribe_all(self._on_event)
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe_all(self._on_event)
            self._bus = None

    @property
    def ok(self) -> bool:
        return not self.violations

    # -- violation plumbing -------------------------------------------------

    def _violate(self, stamped: Stamped, invariant: str, detail: str) -> None:
        violation = InvariantViolation(
            invariant=invariant,
            time=stamped.time,
            run_id=stamped.run_id,
            detail=detail,
            timeline=tuple(self._timeline),
        )
        self.violations.append(violation)
        if self.strict:
            raise InvariantViolationError([violation])

    # -- the audit ----------------------------------------------------------

    def _on_event(self, stamped: Stamped) -> None:
        event = stamped.event
        kind = type(event).__name__
        self.events_audited += 1
        self.event_counts[kind] += 1
        self._timeline.append(
            f"t={stamped.time:.6f} {kind} "
            + " ".join(
                f"{name}={getattr(event, name)!r}"
                for name in getattr(event, "__dataclass_fields__", ())
            )
        )

        # monotonic-time: per run id, time never goes backwards.
        last = self._last_time.get(stamped.run_id)
        if last is not None and stamped.time < last:
            self._violate(
                stamped, "monotonic-time",
                f"event at t={stamped.time} after t={last} in the same run",
            )
        self._last_time[stamped.run_id] = max(stamped.time, last or stamped.time)

        if type(event) is ev.CacheStored:
            balance = self._store_balance.get(event.store, 0) + event.size_bytes
            self._store_balance[event.store] = balance
            self._stored_cids.add(event.cid)
        elif type(event) is ev.CacheEvicted:
            balance = self._store_balance.get(event.store, 0) - event.size_bytes
            self._store_balance[event.store] = balance
            if balance < 0:
                self._violate(
                    stamped, "cache-conservation",
                    f"store {event.store!r} evicted more bytes than it ever "
                    f"stored (balance {balance})",
                )
        elif type(event) is ev.CacheHit:
            self._stored_cids.add(event.cid)
        elif type(event) is ev.StagingSignalled:
            for cid in filter(None, event.cids.split(",")):
                self._pending_cids.add(cid)
        elif type(event) is ev.ChunkStaged:
            if event.cid in self._ready_cids:
                self._violate(
                    stamped, "staging-state",
                    f"chunk {event.cid} confirmed READY twice (duplicate "
                    f"confirmations must be StaleStagingResponse)",
                )
            elif event.cid not in self._pending_cids:
                self._violate(
                    stamped, "staging-state",
                    f"chunk {event.cid} confirmed READY without a prior "
                    f"staging signal (never PENDING)",
                )
            self._pending_cids.discard(event.cid)
            self._ready_cids.add(event.cid)
        elif type(event) is ev.VnfStageCompleted:
            if event.cid not in self._stored_cids:
                self._violate(
                    stamped, "cache-conservation",
                    f"VNF {event.vnf!r} announced chunk {event.cid} staged "
                    f"but no store ever held it",
                )
        elif type(event) is ev.PacketDropped:
            self.dropped_packets += event.count
        elif type(event) is GaugeSample:
            self._audit_gauge(stamped, event)

    def _audit_gauge(self, stamped: Stamped, event: GaugeSample) -> None:
        if event.value < 0:
            self._violate(
                stamped, "gauge-sane",
                f"gauge {event.gauge!r} sampled negative ({event.value})",
            )
        self._gauge_latest[event.gauge] = event.value
        if event.gauge.startswith("cache.occupancy_bytes."):
            store = event.gauge.rsplit(".", 1)[1]
            balance = self._store_balance.get(store, 0)
            if event.value != balance:
                self._violate(
                    stamped, "cache-conservation",
                    f"store {store!r} occupancy gauge reads {event.value:g} "
                    f"but stored−evicted balance is {balance}",
                )
        elif event.gauge == "pool.events_free":
            allocs = self._gauge_latest.get("pool.event_allocs")
            if allocs is not None and event.value > allocs:
                self._violate(
                    stamped, "pool-balance",
                    f"kernel event free list holds {event.value:g} events "
                    f"but only {allocs:g} were ever allocated",
                )
        elif event.gauge == "pool.packets_free":
            releases = self._gauge_latest.get("pool.packet_releases")
            if releases is not None and event.value > releases:
                self._violate(
                    stamped, "pool-balance",
                    f"packet free list holds {event.value:g} packets but "
                    f"only {releases:g} were ever released",
                )

    # -- end-of-run checks ---------------------------------------------------

    def check_report_parity(self, report: dict) -> list[InvariantViolation]:
        """Double-entry check: collector counters vs the auditor's books.

        ``report`` is a :meth:`MetricsCollector.report` snapshot fed by
        the *same* bus.  Any drift between the declarative
        event→metric mapping and the raw event stream is a violation.
        Returns (and records) the violations found; strict mode raises.
        """
        counts = self.event_counts
        expected = {
            "chunks.fetched": counts.get("ChunkFetched", 0),
            "staging.signals": counts.get("StagingSignalled", 0),
            "staging.responses": counts.get("ChunkStaged", 0),
            "cache.insertions": counts.get("CacheStored", 0),
            "cache.evictions": counts.get("CacheEvicted", 0),
            "handoff.executed": counts.get("HandoffStarted", 0),
            "vnf.staged": counts.get("VnfStageCompleted", 0),
        }
        found: list[InvariantViolation] = []
        for name, want in expected.items():
            got = report.get(name, 0)
            if got != want:
                found.append(
                    InvariantViolation(
                        invariant="report-parity",
                        time=float("nan"),
                        run_id="*",
                        detail=(
                            f"collector reports {name}={got} but the event "
                            f"stream carried {want}"
                        ),
                        timeline=tuple(self._timeline),
                    )
                )
        drops = sum(
            value for name, value in report.items()
            if name.startswith("net.drops.")
        )
        if drops != self.dropped_packets:
            found.append(
                InvariantViolation(
                    invariant="report-parity",
                    time=float("nan"),
                    run_id="*",
                    detail=(
                        f"collector reports {drops} dropped packets but the "
                        f"event stream carried {self.dropped_packets}"
                    ),
                    timeline=tuple(self._timeline),
                )
            )
        self.violations.extend(found)
        if found and self.strict:
            raise InvariantViolationError(found)
        return found

    def raise_if_violated(self) -> None:
        """Raise :class:`InvariantViolationError` if any check failed."""
        if self.violations:
            raise InvariantViolationError(self.violations)

    def render(self) -> str:
        if self.ok:
            return (
                f"invariant audit: OK ({self.events_audited} events audited)"
            )
        lines = [
            f"invariant audit: {len(self.violations)} violation(s) over "
            f"{self.events_audited} events"
        ]
        lines.extend(violation.render() for violation in self.violations)
        return "\n".join(lines)

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violations"
        return f"<InvariantAuditor {status} events={self.events_audited}>"


# ---------------------------------------------------------------------------
# Standard testbed gauge set
# ---------------------------------------------------------------------------


def _utilization_gauge(direction, sim) -> Callable[[], float]:
    """Windowed link utilization: busy-time delta over the sample window."""
    state = {"t": sim.now, "busy": direction.stats.busy_time}

    def gauge() -> float:
        now = sim.now
        busy = direction.stats.busy_time
        elapsed = now - state["t"]
        share = (busy - state["busy"]) / elapsed if elapsed > 0 else 0.0
        state["t"] = now
        state["busy"] = busy
        # ARQ retries can push busy-time past wall time transiently;
        # clamp so the gauge stays a fraction.
        return min(max(share, 0.0), 1.0)

    return gauge


def install_flight_recorder(
    scenario: "TestbedScenario",
    manager: Optional["StagingManager"] = None,
    period: float = DEFAULT_PERIOD,
) -> GaugeSampler:
    """Register the standard gauge set for one testbed and start sampling.

    Gauges (all pure functions of sim state, so traces replay exactly):

    - ``cache.occupancy_bytes.<store>`` / ``cache.chunks.<store>`` /
      ``cache.pinned.<store>`` — per-edge XCache state;
    - ``staging.pending_chunks`` — staging pipeline depth (signalled,
      unconfirmed);
    - ``staging.staged_ahead_chunks`` — N in Eq. 1;
    - ``staging.lead_bytes`` — staged-ahead bytes vs client progress,
      the just-in-time quantity the coordinator controls;
    - ``client.progress_bytes`` — bytes of content fetched so far;
    - ``client.connected`` — 1.0 while associated to any AP;
    - ``link.queue_bytes.<link>.{fwd,bwd}`` and
      ``link.utilization.<link>.{fwd,bwd}`` — queue depth and windowed
      utilization per direction;
    - ``pool.event_allocs`` / ``pool.events_free`` and
      ``pool.packet_releases`` / ``pool.packets_free`` — recycling
      levels (the auditor's pool-balance inputs).

    ``manager`` adds the staging-pipeline gauges; pass the
    ``SoftStageClient.manager`` when auditing a SoftStage run (Xftp
    runs have no staging pipeline).
    """
    from repro.xia.packet import packet_pool_stats

    sim = scenario.sim
    sampler = GaugeSampler(sim, period=period)

    for edge in scenario.edges:
        store = edge.store
        name = store.name
        sampler.register(
            f"cache.occupancy_bytes.{name}",
            lambda s=store: s.used_bytes,
        )
        sampler.register(f"cache.chunks.{name}", lambda s=store: len(s))
        sampler.register(
            f"cache.pinned.{name}", lambda s=store: s.pinned_count
        )

    if manager is not None:
        profile = manager.profile
        sampler.register(
            "staging.pending_chunks", profile.pending_staging
        )
        sampler.register(
            "staging.staged_ahead_chunks", profile.staged_ahead
        )
        sampler.register("staging.lead_bytes", profile.staged_ahead_bytes)
        sampler.register("client.progress_bytes", profile.fetched_bytes)

    controller = scenario.controller
    sampler.register(
        "client.connected",
        lambda: 1.0 if controller.is_associated else 0.0,
    )

    for link in scenario.network.links:
        for tag, direction in (("fwd", link.forward), ("bwd", link.backward)):
            sampler.register(
                f"link.queue_bytes.{link.name}.{tag}",
                lambda d=direction: d.queued_bytes,
            )
            sampler.register(
                f"link.utilization.{link.name}.{tag}",
                _utilization_gauge(direction, sim),
            )

    # Pool levels: allocation counters sampled before free-list levels
    # so the auditor's pool-balance check always sees a fresh bound.
    sampler.register("pool.event_allocs", lambda: sim.pool_allocs)
    sampler.register("pool.events_free", lambda: len(sim._event_pool))
    sampler.register(
        "pool.packet_releases",
        lambda: packet_pool_stats()["releases"],
    )
    sampler.register(
        "pool.packets_free", lambda: packet_pool_stats()["size"]
    )

    return sampler.start()
