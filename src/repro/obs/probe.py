"""The Probe: the per-simulator handle layers emit through.

Every :class:`~repro.sim.core.Simulator` owns one Probe (``sim.probe``),
so any component holding a simulator reference can publish without new
constructor plumbing.  The probe stamps each event with the simulated
time and a run identifier before putting it on the bus.

The emit idiom, used at every instrumented site::

    probe = self.sim.probe
    if probe.active:
        probe.emit(ChunkFetched(cid=..., ...))

With no subscribers ``probe.active`` is False and the event dataclass
is never even constructed.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.bus import EventBus, Stamped
from repro.obs.events import ObsEvent


class Probe:
    """Stamps events with ``sim.now`` and a run id, then publishes."""

    __slots__ = ("sim", "bus", "run_id")

    def __init__(
        self,
        sim,
        bus: Optional[EventBus] = None,
        run_id: str = "run",
    ) -> None:
        self.sim = sim
        self.bus = bus if bus is not None else EventBus()
        self.run_id = run_id

    @property
    def active(self) -> bool:
        """True iff anything is listening (check before constructing)."""
        return self.bus.active

    def emit(self, event: ObsEvent) -> None:
        """Stamp and publish ``event`` (no-op with no subscribers)."""
        bus = self.bus
        if bus.active:
            bus.publish(Stamped(self.sim.now, self.run_id, event))

    def __repr__(self) -> str:
        return f"<Probe run_id={self.run_id!r} {self.bus!r}>"
