"""Cross-layer instrumentation: typed event bus, probe and tracing.

This package is the observability spine of the reproduction.  Every
layer — the simulation kernel, links, transports, XCache and the
SoftStage control plane — publishes typed events
(:mod:`repro.obs.events`) through its simulator's
:class:`~repro.obs.probe.Probe` onto an :class:`~repro.obs.bus.EventBus`.
Consumers subscribe by event type:

- :class:`repro.metrics.collector.MetricsCollector` aggregates events
  into counters/samples (``collector.attach(sim.probe.bus)``);
- :class:`~repro.obs.trace.TraceExporter` writes a JSONL trace that
  :func:`~repro.obs.trace.replay_trace` can turn back into an identical
  metrics report offline;
- the flight recorder (:mod:`repro.obs.flight`) samples state gauges
  into the event stream and audits it against conservation invariants;
- the run registry (:mod:`repro.obs.registry`) persists per-run
  summaries and gauge timelines for cross-run diffing.

With no subscribers attached the bus is zero-cost: publishers check
``probe.active`` (a plain attribute read) before constructing events.
"""

from repro.obs.bus import EventBus, Stamped
from repro.obs.probe import Probe
from repro.obs.trace import TraceExporter, read_trace, replay_trace
from repro.obs import events
from repro.obs.events import EVENT_TYPES, ObsEvent
from repro.obs.flight import (
    GaugeSampler,
    InvariantAuditor,
    InvariantViolation,
    InvariantViolationError,
    install_flight_recorder,
)
from repro.obs.registry import RunRecord, RunRegistry, diff_records
from repro.obs.spans import Span, SpanBuilder, build_spans, render_summary, summarize_spans

__all__ = [
    "EVENT_TYPES",
    "EventBus",
    "GaugeSampler",
    "InvariantAuditor",
    "InvariantViolation",
    "InvariantViolationError",
    "ObsEvent",
    "Probe",
    "RunRecord",
    "RunRegistry",
    "Span",
    "SpanBuilder",
    "Stamped",
    "TraceExporter",
    "build_spans",
    "diff_records",
    "events",
    "install_flight_recorder",
    "read_trace",
    "render_summary",
    "replay_trace",
    "summarize_spans",
]
