"""Cross-layer instrumentation: typed event bus, probe and tracing.

This package is the observability spine of the reproduction.  Every
layer — the simulation kernel, links, transports, XCache and the
SoftStage control plane — publishes typed events
(:mod:`repro.obs.events`) through its simulator's
:class:`~repro.obs.probe.Probe` onto an :class:`~repro.obs.bus.EventBus`.
Consumers subscribe by event type:

- :class:`repro.metrics.collector.MetricsCollector` aggregates events
  into counters/samples (``collector.attach(sim.probe.bus)``);
- :class:`~repro.obs.trace.TraceExporter` writes a JSONL trace that
  :func:`~repro.obs.trace.replay_trace` can turn back into an identical
  metrics report offline;
- the flight recorder (:mod:`repro.obs.flight`) samples state gauges
  into the event stream and audits it against conservation invariants;
- the run registry (:mod:`repro.obs.registry`) persists per-run
  summaries and gauge timelines for cross-run diffing;
- the wide-event layer (:mod:`repro.obs.wide`) folds events, spans
  and gauges into one context-complete record per chunk lifecycle,
  identically live and offline;
- the telemetry hub (:mod:`repro.obs.stream`) fans gauge samples and
  wide events out to bounded, never-blocking subscriber queues;
- the HTTP service (:mod:`repro.obs.server`) exposes the registry,
  the ``/diff`` regression gate and a ``/live`` SSE stream;
- the terminal dashboard (:mod:`repro.obs.dashboard`) renders live
  gauge sparklines and a wide-event tail from either source.

With no subscribers attached the bus is zero-cost: publishers check
``probe.active`` (a plain attribute read) before constructing events.
"""

from repro.obs.bus import EventBus, Stamped
from repro.obs.probe import Probe
from repro.obs.trace import TraceExporter, read_trace, replay_trace
from repro.obs import events
from repro.obs.events import EVENT_TYPES, ObsEvent
from repro.obs.flight import (
    GaugeSampler,
    InvariantAuditor,
    InvariantViolation,
    InvariantViolationError,
    install_flight_recorder,
)
from repro.obs.registry import RunRecord, RunRegistry, diff_records
from repro.obs.spans import Span, SpanBuilder, build_spans, render_summary, summarize_spans
from repro.obs.stream import GaugeFeed, TelemetryHub, TelemetrySubscription
from repro.obs.wide import (
    WIDE_SCHEMA_VERSION,
    WideEventBuilder,
    WideEventStream,
    WideEventWriter,
    derive_wide,
    read_wide,
    wide_json,
)

__all__ = [
    "EVENT_TYPES",
    "EventBus",
    "GaugeFeed",
    "GaugeSampler",
    "InvariantAuditor",
    "InvariantViolation",
    "InvariantViolationError",
    "ObsEvent",
    "Probe",
    "RunRecord",
    "RunRegistry",
    "Span",
    "SpanBuilder",
    "Stamped",
    "TelemetryHub",
    "TelemetrySubscription",
    "TraceExporter",
    "WIDE_SCHEMA_VERSION",
    "WideEventBuilder",
    "WideEventStream",
    "WideEventWriter",
    "build_spans",
    "derive_wide",
    "diff_records",
    "events",
    "install_flight_recorder",
    "read_trace",
    "read_wide",
    "render_summary",
    "replay_trace",
    "summarize_spans",
    "wide_json",
]
