"""Wide events: one context-complete record per unit of work.

The event stream (DESIGN.md §7) is narrow — many small happenings per
chunk, scattered across layers.  Debugging a staging decision ("why did
this chunk fall back to the origin?  how much lead did the coordinator
have when it was delivered?") means joining signals, VNF completions,
cache stores, gauge samples and the fetch itself.  This module folds
that join *once*, into **wide events**: one flat JSON record per chunk
lifecycle (requested → signalled → staged → delivered, with the policy,
the current network, the staging lead at delivery and the per-phase
timings in the same record), plus one record per encounter, coverage
gap and handoff, and a per-run summary.

The builder is a pure, deterministic fold over the stamped event
sequence — exactly like :class:`~repro.obs.spans.SpanBuilder` — so
deriving wide events *offline* from a recorded JSONL trace
(``python -m repro trace wide``) produces **byte-identical** records to
the ones a live run emitted (asserted by the parity tests and the CI
telemetry smoke gate).

Schema and forward compatibility
--------------------------------

Every record carries ``"schema": WIDE_SCHEMA_VERSION``.  The
compatibility rule matches :func:`repro.obs.trace.read_trace`: readers
must tolerate (and, when rewriting, preserve) unknown keys, so old
consumers keep working as the schema grows.  :func:`read_wide` returns
plain dicts and therefore preserves unknown keys by construction.

Records serialize through :func:`wide_json` (sorted keys, compact
separators) — the single canonical form both the live and offline
paths share, which is what makes byte-parity achievable.
"""

from __future__ import annotations

import json
from typing import IO, Callable, Iterable, Iterator, Optional, Union

from repro.obs import events as ev
from repro.obs.bus import EventBus, Stamped

#: Bump when record fields change shape (adding keys is *not* a bump:
#: unknown keys are ignored-and-preserved by every reader).
WIDE_SCHEMA_VERSION = 1

#: A wide-event consumer: called once per finished record.
WideSink = Callable[[dict], None]


def wide_json(record: dict) -> str:
    """The canonical serialization: compact, sorted keys."""
    return json.dumps(record, separators=(",", ":"), sort_keys=True)


def policy_from_run_id(run_id: str) -> str:
    """The policy name embedded in a ``{system}[-{policy}]-seed{N}`` id.

    Derived from the run id (not passed out-of-band) so the live and
    offline folds see identical inputs: ``"softstage-rich-seed0"`` →
    ``"rich"``, ``"softstage-seed0"`` → ``""``.  Ids that don't follow
    the runner's naming scheme yield ``""``.
    """
    parts = run_id.split("-")
    if len(parts) >= 3 and parts[-1].startswith("seed"):
        return "-".join(parts[1:-1])
    return ""


def _overlap(start: float, end: float, intervals: list) -> float:
    """Total overlap of ``[start, end]`` with a list of intervals."""
    return sum(
        max(0.0, min(end, hi) - max(start, lo)) for lo, hi in intervals
    )


class WideEventWriter:
    """JSONL sink for wide events (one canonical record per line)."""

    def __init__(self, path_or_file: Union[str, IO[str]]) -> None:
        if hasattr(path_or_file, "write"):
            self._fh: IO[str] = path_or_file
            self._owns_fh = False
            self.path: Optional[str] = None
        else:
            self._fh = open(path_or_file, "w", encoding="utf-8")
            self._owns_fh = True
            self.path = str(path_or_file)
        self.records_written = 0

    def write(self, record: dict) -> None:
        self._fh.write(wide_json(record))
        self._fh.write("\n")
        self.records_written += 1

    def close(self) -> None:
        if getattr(self._fh, "closed", False):
            return
        self._fh.flush()
        if self._owns_fh:
            self._fh.close()

    def __enter__(self) -> "WideEventWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_wide(path_or_file: Union[str, IO[str]]) -> Iterator[dict]:
    """Yield wide-event records from a JSONL file, in file order.

    Records are plain dicts: keys written by a newer version are
    preserved verbatim (the forward-compat rule), so filter-and-rewrite
    pipelines never lose fields they don't understand.
    """
    if hasattr(path_or_file, "read"):
        lines = path_or_file
        close = False
    else:
        lines = open(path_or_file, encoding="utf-8")
        close = True
    try:
        for line in lines:
            line = line.strip()
            if line:
                yield json.loads(line)
    finally:
        if close:
            lines.close()


class WideEventBuilder:
    """Folds one run's stamped events into wide-event records.

    Works identically live (``builder.attach(sim.probe.bus)``) and
    offline (``for s in read_trace(path): builder.feed(s)``); call
    :meth:`finish` when the run's stream ends to emit the run-summary
    record and detach.  Records go to every sink in ``sinks``, in
    emission order; ``seq`` numbers them per run.

    The fold keeps its own books (it does not depend on
    :class:`~repro.obs.spans.SpanBuilder`): per-chunk phase timestamps,
    the latest value of every sampled gauge (so ``lead_bytes`` /
    ``progress_bytes`` at delivery come straight from the flight
    recorder when it ran, and are ``None`` when it didn't), known
    coverage-gap intervals (for the ``masked_s`` gain attribution),
    and the current network (last completed handoff target).
    """

    def __init__(
        self,
        run_id: Optional[str] = None,
        sinks: Optional[list[WideSink]] = None,
    ) -> None:
        #: Only events stamped with this run id are folded; ``None``
        #: adopts the first run id seen.
        self.run_id = run_id
        self.sinks: list[WideSink] = list(sinks or [])
        self.events_seen = 0
        self.skipped_other_runs = 0
        self.records_emitted = 0
        self._chunks: dict[str, dict] = {}
        self._handoffs: dict[str, float] = {}
        self._gauge_latest: dict[str, float] = {}
        self._gaps: list[tuple[float, float]] = []
        self._network = ""
        self._encounters = 0
        self._gap_count = 0
        self._handoff_count = 0
        self._chunks_this_encounter = 0
        self._last_time = 0.0
        self._totals = {
            "chunks": 0, "edge": 0, "origin": 0, "fallback": 0,
            "re_signals": 0, "stage_failures": 0, "stale_responses": 0,
            "handoffs_completed": 0, "handoffs_deferred": 0,
            "dropped_packets": 0,
        }
        self._masked_total = 0.0
        self._gap_time = 0.0
        self._encounter_time = 0.0
        self._buses: list[EventBus] = []
        self._finished = False

    # -- wiring ------------------------------------------------------------

    def attach(self, bus: EventBus) -> "WideEventBuilder":
        bus.subscribe_all(self.feed)
        self._buses.append(bus)
        return self

    def detach(self) -> None:
        for bus in list(self._buses):
            bus.unsubscribe_all(self.feed)
        self._buses.clear()

    # -- emission ----------------------------------------------------------

    def _emit(self, record: dict) -> None:
        record["schema"] = WIDE_SCHEMA_VERSION
        record["run"] = self.run_id or ""
        record["policy"] = policy_from_run_id(self.run_id or "")
        record["seq"] = self.records_emitted
        self.records_emitted += 1
        for sink in self.sinks:
            sink(record)

    # -- the fold ----------------------------------------------------------

    def feed(self, stamped: Stamped) -> None:
        """Fold one stamped event into the wide-event state machine."""
        if self.run_id is None:
            self.run_id = stamped.run_id
        elif stamped.run_id != self.run_id:
            self.skipped_other_runs += 1
            return
        self.events_seen += 1
        self._last_time = stamped.time
        handler = _HANDLERS.get(type(stamped.event))
        if handler is not None:
            handler(self, stamped.time, stamped.event)

    def finish(self) -> int:
        """Detach, emit the run-summary record, return records emitted."""
        if not self._finished:
            self._finished = True
            self.detach()
            totals = self._totals
            self._emit({
                "kind": "run",
                "t_end": self._last_time,
                "events": self.events_seen,
                "network": self._network,
                "chunks": totals["chunks"],
                "chunks_edge": totals["edge"],
                "chunks_origin": totals["origin"],
                "chunks_fallback": totals["fallback"],
                "chunks_open": len(self._chunks),
                "re_signals": totals["re_signals"],
                "stage_failures": totals["stage_failures"],
                "stale_responses": totals["stale_responses"],
                "encounters": self._encounters,
                "gaps": self._gap_count,
                "gap_time_s": self._gap_time,
                "encounter_time_s": self._encounter_time,
                "handoffs_completed": totals["handoffs_completed"],
                "handoffs_deferred": totals["handoffs_deferred"],
                "dropped_packets": totals["dropped_packets"],
                "masked_total_s": self._masked_total,
                "lead_bytes": self._gauge_latest.get("staging.lead_bytes"),
                "progress_bytes": self._gauge_latest.get(
                    "client.progress_bytes"
                ),
            })
        return self.records_emitted

    # -- chunk lifecycle ---------------------------------------------------

    def _chunk(self, cid: str) -> dict:
        state = self._chunks.get(cid)
        if state is None:
            state = self._chunks[cid] = {}
        return state


class WideEventStream:
    """Dispatches a (possibly multi-run) stamped stream to builders.

    Runs in a trace written by the demo/sweep drivers are *sequential*
    (one run finishes before the next starts), so the stream finishes
    the previous run's builder — emitting its run-summary record —
    the moment a new run id appears, exactly where a live pipeline
    sharing one output file would have emitted it.  That positional
    agreement is what makes ``repro trace wide`` byte-identical to a
    live ``--emit-wide`` file holding several runs.
    """

    def __init__(self, sinks: Optional[list[WideSink]] = None) -> None:
        self.sinks = list(sinks or [])
        self.builders: list[WideEventBuilder] = []
        self._current: Optional[WideEventBuilder] = None

    def feed(self, stamped: Stamped) -> None:
        current = self._current
        if current is None or stamped.run_id != current.run_id:
            if current is not None:
                current.finish()
            current = WideEventBuilder(
                run_id=stamped.run_id, sinks=self.sinks
            )
            self.builders.append(current)
            self._current = current
        current.feed(stamped)

    def finish(self) -> int:
        """Finish the in-progress builder; total records emitted."""
        if self._current is not None:
            self._current.finish()
            self._current = None
        return sum(b.records_emitted for b in self.builders)


def derive_wide(
    stampeds: Iterable[Stamped],
    sinks: Optional[list[WideSink]] = None,
    run_id: Optional[str] = None,
) -> list[dict]:
    """Offline derivation: stamped events → wide-event records.

    ``run_id`` restricts to one run; the default processes every run
    in stream order (sequential-run traces, see
    :class:`WideEventStream`).  Returns the records (they also go to
    ``sinks``, in the same order).
    """
    records: list[dict] = []
    all_sinks = [records.append] + list(sinks or [])
    if run_id is not None:
        builder = WideEventBuilder(run_id=run_id, sinks=all_sinks)
        for stamped in stampeds:
            builder.feed(stamped)
        builder.finish()
    else:
        stream = WideEventStream(sinks=all_sinks)
        for stamped in stampeds:
            stream.feed(stamped)
        stream.finish()
    return records


# -- per-event fold functions ------------------------------------------------


def _split_cids(cids: str) -> list[str]:
    return [c for c in cids.split(",") if c] if cids else []


def _on_gauge(b: WideEventBuilder, t: float, e: ev.GaugeSample) -> None:
    b._gauge_latest[e.gauge] = e.value


def _on_signalled(b: WideEventBuilder, t: float, e: ev.StagingSignalled) -> None:
    for cid in _split_cids(e.cids):
        state = b._chunks.get(cid)
        if state is None:
            state = b._chunk(cid)
            state["t_signalled"] = t
            state["signal_label"] = e.label
        else:
            state["re_signals"] = state.get("re_signals", 0) + 1
            b._totals["re_signals"] += 1


def _on_stage_request(
    b: WideEventBuilder, t: float, e: ev.StageRequestReceived
) -> None:
    for cid in _split_cids(e.cids):
        state = b._chunks.get(cid)
        if state is not None and "t_stage_request" not in state:
            state["t_stage_request"] = t
            state["vnf"] = e.vnf


def _on_vnf_staged(b: WideEventBuilder, t: float, e: ev.VnfStageCompleted) -> None:
    state = b._chunks.get(e.cid)
    if state is not None:
        state["t_staged"] = t
        state["stage_latency"] = e.latency
        state["vnf"] = e.vnf


def _on_vnf_failed(b: WideEventBuilder, t: float, e: ev.VnfStageFailed) -> None:
    state = b._chunks.get(e.cid)
    if state is not None:
        state["stage_failures"] = state.get("stage_failures", 0) + 1
        b._totals["stage_failures"] += 1


def _on_chunk_staged(b: WideEventBuilder, t: float, e: ev.ChunkStaged) -> None:
    state = b._chunks.get(e.cid)
    if state is not None:
        state["t_ready"] = t
        if e.staging_latency is not None:
            state["staging_latency"] = e.staging_latency
        if e.control_rtt is not None:
            state["control_rtt"] = e.control_rtt


def _on_stale(b: WideEventBuilder, t: float, e: ev.StaleStagingResponse) -> None:
    state = b._chunks.get(e.cid)
    if state is not None:
        state["stale_responses"] = state.get("stale_responses", 0) + 1
        b._totals["stale_responses"] += 1


def _on_cache_stored(b: WideEventBuilder, t: float, e: ev.CacheStored) -> None:
    # Origin-side publishes at t=0 never opened a lifecycle, so (like
    # the span builder) only annotate chunks already in flight.
    state = b._chunks.get(e.cid)
    if state is not None:
        state["t_cached"] = t
        state["cache_store"] = e.store


def _on_chunk_fetched(b: WideEventBuilder, t: float, e: ev.ChunkFetched) -> None:
    state = b._chunks.pop(e.cid, {})
    fetch_start = t - e.latency
    t_signalled = state.get("t_signalled")
    t_staged = state.get("t_staged")
    t_ready = state.get("t_ready")
    lifecycle_start = t_signalled if t_signalled is not None else fetch_start
    masked = _overlap(lifecycle_start, t, b._gaps)
    source = "edge" if e.from_edge else ("fallback" if e.fallback else "origin")
    b._totals["chunks"] += 1
    b._totals[source] += 1
    b._chunks_this_encounter += 1
    b._masked_total += masked
    b._emit({
        "kind": "chunk",
        "cid": e.cid,
        "source": source,
        "network": b._network,
        "t_signalled": t_signalled,
        "t_stage_request": state.get("t_stage_request"),
        "t_staged": t_staged,
        "t_ready": t_ready,
        "t_cached": state.get("t_cached"),
        "t_fetch_start": fetch_start,
        "t_fetched": t,
        "fetch_latency": e.latency,
        "stage_latency": state.get("stage_latency"),
        "staging_latency": state.get("staging_latency"),
        "control_rtt": state.get("control_rtt"),
        "stage_wait_s": (
            t_staged - t_signalled
            if t_staged is not None and t_signalled is not None else None
        ),
        "ready_wait_s": (
            fetch_start - t_ready if t_ready is not None else None
        ),
        "masked_s": masked,
        "re_signals": state.get("re_signals", 0),
        "stage_failures": state.get("stage_failures", 0),
        "stale_responses": state.get("stale_responses", 0),
        "signal_label": state.get("signal_label"),
        "vnf": state.get("vnf"),
        "cache_store": state.get("cache_store"),
        "lead_bytes": b._gauge_latest.get("staging.lead_bytes"),
        "progress_bytes": b._gauge_latest.get("client.progress_bytes"),
        "connected": b._gauge_latest.get("client.connected"),
    })


def _on_handoff_started(b: WideEventBuilder, t: float, e: ev.HandoffStarted) -> None:
    b._handoffs[e.target] = t


def _on_handoff_completed(
    b: WideEventBuilder, t: float, e: ev.HandoffCompleted
) -> None:
    start = b._handoffs.pop(e.target, None)
    if start is None:
        start = t - e.duration
    from_network = b._network
    b._network = e.target
    b._handoff_count += 1
    b._totals["handoffs_completed"] += 1
    b._emit({
        "kind": "handoff",
        "key": f"ho{b._handoff_count}",
        "target": e.target,
        "from_network": from_network,
        "status": "completed",
        "t_start": start,
        "t_end": t,
        "duration_s": e.duration,
        "connected": b._gauge_latest.get("client.connected"),
        "lead_bytes": b._gauge_latest.get("staging.lead_bytes"),
    })


def _on_handoff_deferred(
    b: WideEventBuilder, t: float, e: ev.HandoffDeferred
) -> None:
    b._handoff_count += 1
    b._totals["handoffs_deferred"] += 1
    b._emit({
        "kind": "handoff",
        "key": f"ho{b._handoff_count}",
        "target": e.target,
        "from_network": b._network,
        "status": "deferred",
        "t_start": t,
        "t_end": t,
        "duration_s": 0.0,
        "connected": b._gauge_latest.get("client.connected"),
        "lead_bytes": b._gauge_latest.get("staging.lead_bytes"),
    })


def _on_encounter_ended(
    b: WideEventBuilder, t: float, e: ev.EncounterEnded
) -> None:
    b._encounters += 1
    b._encounter_time += e.duration
    chunks = b._chunks_this_encounter
    b._chunks_this_encounter = 0
    b._emit({
        "kind": "encounter",
        "key": f"enc{b._encounters}",
        "network": b._network,
        "t_start": t - e.duration,
        "t_end": t,
        "duration_s": e.duration,
        "chunks_delivered": chunks,
        "progress_bytes": b._gauge_latest.get("client.progress_bytes"),
        "lead_bytes": b._gauge_latest.get("staging.lead_bytes"),
    })


def _on_coverage_gap(b: WideEventBuilder, t: float, e: ev.CoverageGap) -> None:
    b._gap_count += 1
    b._gap_time += e.duration
    b._gaps.append((t - e.duration, t))
    b._emit({
        "kind": "gap",
        "key": f"gap{b._gap_count}",
        "network": b._network,
        "t_start": t - e.duration,
        "t_end": t,
        "duration_s": e.duration,
        "lead_bytes": b._gauge_latest.get("staging.lead_bytes"),
        "progress_bytes": b._gauge_latest.get("client.progress_bytes"),
    })


def _on_packet_dropped(b: WideEventBuilder, t: float, e: ev.PacketDropped) -> None:
    b._totals["dropped_packets"] += e.count


_HANDLERS = {
    ev.GaugeSample: _on_gauge,
    ev.StagingSignalled: _on_signalled,
    ev.StageRequestReceived: _on_stage_request,
    ev.VnfStageCompleted: _on_vnf_staged,
    ev.VnfStageFailed: _on_vnf_failed,
    ev.ChunkStaged: _on_chunk_staged,
    ev.StaleStagingResponse: _on_stale,
    ev.CacheStored: _on_cache_stored,
    ev.ChunkFetched: _on_chunk_fetched,
    ev.HandoffStarted: _on_handoff_started,
    ev.HandoffCompleted: _on_handoff_completed,
    ev.HandoffDeferred: _on_handoff_deferred,
    ev.EncounterEnded: _on_encounter_ended,
    ev.CoverageGap: _on_coverage_gap,
    ev.PacketDropped: _on_packet_dropped,
}
