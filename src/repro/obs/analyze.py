"""Trace analysis: latency breakdowns, critical paths, export, diff.

Everything here is *offline*: it consumes a JSONL trace (possibly
holding several runs, told apart by their ``run`` ids) or pre-built
span lists, and produces plain data objects the CLI renders.  The
heavy lifting — folding events into spans — lives in
:mod:`repro.obs.spans`; this module answers the questions the paper's
evaluation asks of those spans:

- *stage wait*: how long a chunk sat between being signalled and the
  VNF finishing its prefetch (Eq. 1's just-in-time window);
- *edge vs origin fetch time*: the delegation fast path against the
  origin fallback;
- *time masked by disconnection*: how much of the staging interval
  overlapped coverage gaps — staging work the vehicle never waited
  for, the paper's core claim;
- *critical path*: which chunk (and which of its phases) the download
  was blocked on, interval by interval;
- run-vs-run *diffs* (softstage vs xftp, seed A vs seed B);
- Chrome ``trace_event`` JSON so any trace opens in Perfetto or
  chrome://tracing.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import IO, Iterable, Optional, Union

from repro.obs.spans import CHUNK, ENCOUNTER, GAP, HANDOFF, Span, build_spans
from repro.obs.trace import read_trace


# -- loading -----------------------------------------------------------------


@dataclass
class TraceRun:
    """One run's slice of a trace: its events' types and derived spans."""

    run_id: str
    event_counts: Counter
    spans: list[Span]
    first_time: float
    last_time: float

    @property
    def events_total(self) -> int:
        return sum(self.event_counts.values())


def load_runs(
    path_or_file: Union[str, IO[str]], strict: bool = False
) -> dict[str, TraceRun]:
    """Split a (possibly multi-run) trace into per-run analyses.

    Returns run ids in first-appearance order.  Unknown event types
    are skipped per :func:`repro.obs.trace.read_trace` semantics.
    """
    stampeds_by_run: dict[str, list] = {}
    for stamped in read_trace(path_or_file, strict=strict):
        stampeds_by_run.setdefault(stamped.run_id, []).append(stamped)
    runs: dict[str, TraceRun] = {}
    for run_id, stampeds in stampeds_by_run.items():
        runs[run_id] = TraceRun(
            run_id=run_id,
            event_counts=Counter(type(s.event).__name__ for s in stampeds),
            spans=build_spans(stampeds, run_id=run_id),
            first_time=stampeds[0].time,
            last_time=stampeds[-1].time,
        )
    return runs


def pick_run(runs: dict[str, TraceRun], run_id: Optional[str] = None) -> TraceRun:
    """Select one run: by id, or the only/first one."""
    if not runs:
        raise ValueError("trace contains no events")
    if run_id is None:
        return next(iter(runs.values()))
    try:
        return runs[run_id]
    except KeyError:
        raise ValueError(
            f"run {run_id!r} not in trace (has: {', '.join(runs)})"
        ) from None


# -- latency breakdown -------------------------------------------------------


@dataclass(frozen=True)
class ChunkBreakdown:
    """Where one delivered chunk's wall time went."""

    cid: str
    source: str  # "edge" | "origin" | "fallback"
    #: signalled → VNF prefetch done (None when never signalled/staged).
    stage_wait: Optional[float]
    #: VNF prefetch done → client fetch started.
    ready_wait: Optional[float]
    #: client fetch start → fetch complete.
    fetch_time: float
    #: part of the staging interval overlapping coverage gaps.
    masked: float
    total: float


def _overlap(start: float, end: float, intervals: list[tuple[float, float]]) -> float:
    return sum(
        max(0.0, min(end, hi) - max(start, lo)) for lo, hi in intervals
    )


def latency_breakdown(spans: Iterable[Span]) -> list[ChunkBreakdown]:
    """Per-delivered-chunk phase decomposition, in delivery order."""
    spans = list(spans)
    gaps = [(s.start, s.end) for s in spans if s.kind == GAP and s.end is not None]
    rows = []
    for span in spans:
        if span.kind != CHUNK or span.end is None:
            continue
        signalled = span.phase_time("signalled")
        staged = span.phase_time("staged")
        fetch_start = float(span.attrs.get("fetch_start", span.start))
        stage_wait = staged - signalled if signalled is not None and staged is not None else None
        ready_wait = fetch_start - staged if staged is not None else None
        masked = (
            _overlap(signalled, staged, gaps)
            if signalled is not None and staged is not None
            else 0.0
        )
        rows.append(
            ChunkBreakdown(
                cid=span.key,
                source=span.status,
                stage_wait=stage_wait,
                ready_wait=ready_wait,
                fetch_time=float(span.attrs.get("fetch_latency", 0.0)),
                masked=masked,
                total=span.end - span.start,
            )
        )
    rows.sort(key=lambda r: r.cid)
    return rows


@dataclass(frozen=True)
class BreakdownSummary:
    """Aggregate of :func:`latency_breakdown` over one run."""

    chunks: int
    edge: int
    origin: int
    fallback: int
    mean_stage_wait: float
    mean_edge_fetch: float
    mean_origin_fetch: float
    masked_total: float


def summarize_breakdown(rows: Iterable[ChunkBreakdown]) -> BreakdownSummary:
    rows = list(rows)
    edge = [r for r in rows if r.source == "edge"]
    origin = [r for r in rows if r.source == "origin"]
    fallback = [r for r in rows if r.source == "fallback"]
    staged = [r.stage_wait for r in rows if r.stage_wait is not None]
    non_edge = origin + fallback

    def mean(xs):
        return sum(xs) / len(xs) if xs else 0.0

    return BreakdownSummary(
        chunks=len(rows),
        edge=len(edge),
        origin=len(origin),
        fallback=len(fallback),
        mean_stage_wait=mean(staged),
        mean_edge_fetch=mean([r.fetch_time for r in edge]),
        mean_origin_fetch=mean([r.fetch_time for r in non_edge]),
        masked_total=sum(r.masked for r in rows),
    )


# -- critical path -----------------------------------------------------------


@dataclass(frozen=True)
class CriticalSegment:
    """One blocking interval of the download timeline.

    Segments partition the time between the first chunk's start and
    the last chunk's delivery; each is attributed to the chunk whose
    completion ended it, labelled with the phase that chunk was in
    when the segment began (``fetch`` once its fetch had started,
    ``stage_wait`` while it was still being staged, ``idle`` when the
    chunk's span had not yet opened).
    """

    cid: str
    start: float
    end: float
    duration: float
    phase: str


def critical_path(spans: Iterable[Span]) -> list[CriticalSegment]:
    """The per-download blocking chain, over delivered chunk spans."""
    chunks = [s for s in spans if s.kind == CHUNK and s.end is not None]
    chunks.sort(key=lambda s: (s.end, s.span_id))
    segments = []
    cursor: Optional[float] = None
    for span in chunks:
        seg_start = span.start if cursor is None else cursor
        if span.end <= seg_start:
            cursor = max(cursor if cursor is not None else span.end, span.end)
            continue
        fetch_start = float(span.attrs.get("fetch_start", span.start))
        if seg_start >= fetch_start:
            phase = "fetch"
        elif seg_start >= span.start:
            phase = "stage_wait"
        else:
            phase = "idle"
        segments.append(
            CriticalSegment(
                cid=span.key,
                start=seg_start,
                end=span.end,
                duration=span.end - seg_start,
                phase=phase,
            )
        )
        cursor = span.end
    return segments


# -- Chrome trace-event export ----------------------------------------------

#: Stable lane (tid) per span kind in the Chrome view.
_KIND_TIDS = {CHUNK: 1, ENCOUNTER: 2, GAP: 3, HANDOFF: 4}


def chrome_trace(runs: dict[str, "TraceRun"]) -> dict:
    """Chrome ``trace_event`` JSON for one or more runs.

    Each run becomes a Chrome *process* (pid), each span kind a
    *thread* lane (tid) in it.  Closed spans are complete events
    (``ph="X"``); open spans become instants (``ph="i"``).  Times are
    microseconds, as the format requires.  The result loads directly
    in Perfetto / chrome://tracing.
    """
    events: list[dict] = []
    for pid, (run_id, run) in enumerate(runs.items(), start=1):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": run_id},
            }
        )
        for kind, tid in sorted(_KIND_TIDS.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": kind},
                }
            )
        for span in run.spans:
            tid = _KIND_TIDS.get(span.kind, 9)
            args = {k: span.attrs[k] for k in sorted(span.attrs)}
            args["status"] = span.status
            args["phases"] = [f"{name}@{time:.6f}" for name, time in span.phases]
            if span.parent_id is not None:
                args["parent"] = span.parent_id
            base = {
                "name": f"{span.kind}:{span.key}",
                "cat": span.kind,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
            if span.end is not None:
                events.append(
                    {
                        **base,
                        "ph": "X",
                        "ts": span.start * 1e6,
                        "dur": (span.end - span.start) * 1e6,
                    }
                )
            else:
                events.append(
                    {**base, "ph": "i", "ts": span.start * 1e6, "s": "t"}
                )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# -- run diffing -------------------------------------------------------------


@dataclass(frozen=True)
class KindDelta:
    """Span statistics of one kind, side by side across two runs."""

    kind: str
    count_a: int
    count_b: int
    mean_a: float
    mean_b: float

    @property
    def delta(self) -> float:
        return self.mean_b - self.mean_a

    @property
    def ratio(self) -> Optional[float]:
        return self.mean_b / self.mean_a if self.mean_a else None


def diff_spans(spans_a: Iterable[Span], spans_b: Iterable[Span]) -> list[KindDelta]:
    """Per-span-kind latency deltas between two runs (B relative to A)."""
    from repro.obs.spans import summarize_spans

    a = {s.kind: s for s in summarize_spans(spans_a)}
    b = {s.kind: s for s in summarize_spans(spans_b)}
    out = []
    for kind in sorted(set(a) | set(b)):
        sa, sb = a.get(kind), b.get(kind)
        out.append(
            KindDelta(
                kind=kind,
                count_a=sa.count if sa else 0,
                count_b=sb.count if sb else 0,
                mean_a=sa.mean if sa else 0.0,
                mean_b=sb.mean if sb else 0.0,
            )
        )
    return out
