"""A live terminal dashboard over the telemetry hub (or an SSE stream).

Two front doors share one renderer:

- ``python -m repro demo --live`` runs the demo on a background thread
  with a :class:`~repro.obs.stream.TelemetryHub` attached and repaints
  this dashboard from an in-process subscription;
- ``python -m repro watch <url>`` connects to a ``repro serve``
  process's ``/live`` Server-Sent Events endpoint and repaints from
  the wire.

The :class:`Dashboard` itself is a pure fold: ``feed(topic, payload)``
updates bounded in-memory state (latest gauge windows, a scrolling
wide-event tail, per-run status) and ``render()`` produces a plain
string frame — deterministic for a given feed sequence, which is what
the tests assert.  All painting is ANSI clear-and-redraw; no curses,
no dependencies.

Consumers read hub items at their own pace; if the dashboard falls
behind, the hub drops for it and the drop counter shows up in the
frame header — the simulation is never slowed (see
:mod:`repro.obs.stream`).
"""

from __future__ import annotations

import json
import sys
import time
from collections import deque
from typing import IO, Iterator, Optional, Union

from repro.obs.stream import TelemetrySubscription

_SPARK = "▁▂▃▄▅▆▇█"

#: Gauge families the dashboard plots, in display order; everything
#: else still updates the "last value" column.
FEATURED_GAUGES = (
    "staging.lead_bytes",
    "client.progress_bytes",
    "staging.pending_chunks",
    "client.connected",
)


def sparkline(values: list) -> str:
    """Unicode block sparkline (shared with the ``runs gauges`` CLI)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK[0] * len(values)
    scale = (len(_SPARK) - 1) / (hi - lo)
    return "".join(_SPARK[int((v - lo) * scale)] for v in values)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _describe_wide(record: dict) -> str:
    """One tail line per wide event (unknown kinds degrade gracefully)."""
    kind = record.get("kind", "?")
    t = record.get("t_fetched", record.get("t_end", record.get("t", 0.0)))
    head = f"t={_fmt(t):>9}  {kind:<9}"
    if kind == "chunk":
        return (
            f"{head} {str(record.get('cid', ''))[:12]:<12} "
            f"{record.get('source', '?'):<8} "
            f"fetch={_fmt(record.get('fetch_latency'))}s "
            f"wait={_fmt(record.get('stage_wait_s'))}s "
            f"masked={_fmt(record.get('masked_s'))}s "
            f"lead={_fmt(record.get('lead_bytes'))}"
        )
    if kind == "encounter":
        return (
            f"{head} {record.get('key', ''):<12} "
            f"dur={_fmt(record.get('duration_s'))}s "
            f"chunks={_fmt(record.get('chunks_delivered'))}"
        )
    if kind == "gap":
        return (
            f"{head} {record.get('key', ''):<12} "
            f"offline={_fmt(record.get('duration_s'))}s"
        )
    if kind == "handoff":
        return (
            f"{head} ->{record.get('target', '?'):<10} "
            f"{record.get('status', '')} "
            f"dur={_fmt(record.get('duration_s'))}s"
        )
    if kind == "run":
        return (
            f"{head} chunks={_fmt(record.get('chunks'))} "
            f"edge={_fmt(record.get('chunks_edge'))} "
            f"masked={_fmt(record.get('masked_total_s'))}s"
        )
    return f"{head} {json.dumps(record, sort_keys=True)[:60]}"


class Dashboard:
    """Folds hub items into a renderable terminal frame."""

    def __init__(self, window: int = 48, tail: int = 10,
                 alert_tail: int = 5) -> None:
        #: Samples kept per gauge sparkline.
        self.window = int(window)
        self._series: dict[str, deque] = {}
        self._gauge_last_t: dict[str, float] = {}
        self._tail: deque = deque(maxlen=int(tail))
        self._alerts: deque = deque(maxlen=int(alert_tail))
        self._runs: dict[str, dict] = {}
        self.items_seen = 0
        self.wide_seen = 0
        self.alerts_seen = 0
        self.dropped = 0

    # -- the fold ----------------------------------------------------------

    def feed(self, topic: str, payload: dict) -> None:
        self.items_seen += 1
        if topic == "gauge":
            name = payload.get("gauge", "?")
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = deque(maxlen=self.window)
            series.append(payload.get("v", 0.0))
            self._gauge_last_t[name] = payload.get("t", 0.0)
        elif topic == "wide":
            self.wide_seen += 1
            self._tail.append(_describe_wide(payload))
        elif topic == "run":
            run = payload.get("run", "?")
            self._runs[run] = dict(payload)
        elif topic == "alert":
            self.alerts_seen += 1
            self._alerts.append(
                f"t={_fmt(payload.get('t')):>9}  "
                f"{payload.get('run', '?')}: {payload.get('slo', '?')} "
                f"observed={_fmt(payload.get('value'))} "
                f"burn={_fmt(payload.get('burn_rate'))}"
            )
        elif topic == "end":
            self.dropped = payload.get("dropped", self.dropped)

    def feed_many(self, items: list) -> int:
        for topic, payload in items:
            self.feed(topic, payload)
        return len(items)

    # -- rendering ---------------------------------------------------------

    def render(self, title: str = "repro live telemetry") -> str:
        lines = [title, "=" * len(title)]
        if self._runs:
            for run in sorted(self._runs):
                info = self._runs[run]
                state = info.get("state", "?")
                extra = ""
                if "download_time" in info:
                    extra = f"  time={_fmt(info['download_time'])}s"
                lines.append(f"run {run}: {state}{extra}")
        else:
            lines.append("run: (waiting for telemetry)")
        lines.append("")
        plotted = [g for g in FEATURED_GAUGES if g in self._series]
        other = sorted(set(self._series) - set(plotted))
        if plotted or other:
            width = max(len(name) for name in (*plotted, *other))
            for name in (*plotted, *other):
                series = self._series[name]
                values = list(series)
                last_t = self._gauge_last_t.get(name, 0.0)
                spark = (
                    sparkline(values) if name in plotted
                    else f"({len(values)} samples)"
                )
                lines.append(
                    f"  {name:<{width}}  {spark}  "
                    f"last={_fmt(values[-1])} @t={_fmt(last_t)}s"
                )
        else:
            lines.append("  (no gauge samples yet — run with --gauges)")
        lines.append("")
        lines.append(f"wide events ({self.wide_seen} total):")
        if self._tail:
            lines.extend(f"  {entry}" for entry in self._tail)
        else:
            lines.append("  (none yet)")
        if self.alerts_seen:
            lines.append("")
            lines.append(f"SLO alerts ({self.alerts_seen} total):")
            lines.extend(f"  {entry}" for entry in self._alerts)
        lines.append("")
        lines.append(
            f"items={self.items_seen} wide={self.wide_seen} "
            f"alerts={self.alerts_seen} dropped={self.dropped}"
        )
        return "\n".join(lines)


# -- SSE client (for ``repro watch``) ----------------------------------------


def iter_sse(
    stream: Union[IO[bytes], IO[str]],
) -> Iterator[tuple[str, dict]]:
    """Parse Server-Sent Events into ``(event, payload)`` pairs.

    The exact inverse of :func:`repro.obs.server.sse_format`: comment
    frames (``: keep-alive``) are skipped, multi-line ``data:`` is
    joined, a missing ``event:`` defaults to ``"message"``.  Ends when
    the stream does.
    """
    event: Optional[str] = None
    data_lines: list[str] = []
    for raw in stream:
        line = raw.decode("utf-8") if isinstance(raw, bytes) else raw
        line = line.rstrip("\r\n")
        if not line:
            if data_lines:
                payload = json.loads("\n".join(data_lines))
                yield (event or "message", payload)
            event = None
            data_lines = []
        elif line.startswith(":"):
            continue
        elif line.startswith("event:"):
            event = line[len("event:"):].strip()
        elif line.startswith("data:"):
            data_lines.append(line[len("data:"):].strip())
    if data_lines:
        yield (event or "message", json.loads("\n".join(data_lines)))


# -- repaint loops ------------------------------------------------------------

#: Wall-clock seconds between repaints.
REFRESH = 0.25

_CLEAR = "\x1b[2J\x1b[H"


def _paint(dash: Dashboard, out: IO[str], clear: bool) -> None:
    if clear:
        out.write(_CLEAR)
    out.write(dash.render())
    out.write("\n")
    out.flush()


def run_from_subscription(
    sub: TelemetrySubscription,
    dash: Optional[Dashboard] = None,
    out: Optional[IO[str]] = None,
    refresh: float = REFRESH,
    clear: bool = True,
    stop=None,
) -> Dashboard:
    """Repaint from an in-process hub subscription until the hub closes.

    ``stop`` is an optional zero-argument callable polled each frame;
    returning True ends the loop early (used by ``demo --live`` once
    the background run finishes and the hub is drained).
    """
    dash = dash or Dashboard()
    out = out or sys.stdout
    while True:
        drained = dash.feed_many(sub.drain())
        _paint(dash, out, clear)
        if sub.closed and not drained:
            return dash
        if stop is not None and stop() and not drained:
            return dash
        time.sleep(refresh)


def run_from_sse(
    stream,
    dash: Optional[Dashboard] = None,
    out: Optional[IO[str]] = None,
    clear: bool = True,
    max_events: Optional[int] = None,
) -> Dashboard:
    """Repaint from an SSE byte stream until it ends (``repro watch``)."""
    dash = dash or Dashboard()
    out = out or sys.stdout
    painted = 0
    for topic, payload in iter_sse(stream):
        if topic == "hello":
            continue
        dash.feed(topic, payload)
        painted += 1
        _paint(dash, out, clear)
        if topic == "end":
            break
        if max_events is not None and painted >= max_events:
            break
    if painted == 0:
        _paint(dash, out, clear)
    return dash
