"""A typed, topic-keyed publish/subscribe event bus.

Topics are the event *classes* from :mod:`repro.obs.events`.  The bus
is deliberately synchronous and allocation-free on the unsubscribed
path: ``publish`` is only ever called behind a ``bus.active`` check,
and ``active`` is a plain attribute maintained on (un)subscribe, so a
run with no subscribers never constructs an event object and never
enters ``publish``.

Delivery order is deterministic: for each published event, handlers
subscribed to that event's type run first (in subscription order),
then wildcard handlers (in subscription order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.obs.events import ObsEvent


@dataclass(frozen=True, slots=True)
class Stamped:
    """An event as it travels the bus: payload + time + run identity."""

    time: float
    run_id: str
    event: ObsEvent


Handler = Callable[[Stamped], None]


class EventBus:
    """Topic-keyed pub/sub over :class:`~repro.obs.events.ObsEvent` types."""

    __slots__ = ("_by_topic", "_wildcard", "active")

    def __init__(self) -> None:
        self._by_topic: dict[type[ObsEvent], list[Handler]] = {}
        self._wildcard: list[Handler] = []
        #: True iff at least one handler is attached.  Publishers read
        #: this before constructing events (the zero-cost fast path).
        self.active = False

    # -- subscription ------------------------------------------------------

    def subscribe(self, topic: type[ObsEvent], handler: Handler) -> Handler:
        """Deliver events of exactly ``topic`` to ``handler``."""
        if not (isinstance(topic, type) and issubclass(topic, ObsEvent)):
            raise TypeError(f"topic must be an ObsEvent subclass, got {topic!r}")
        self._by_topic.setdefault(topic, []).append(handler)
        self.active = True
        return handler

    def subscribe_all(self, handler: Handler) -> Handler:
        """Deliver every published event to ``handler``."""
        self._wildcard.append(handler)
        self.active = True
        return handler

    def unsubscribe(self, topic: type[ObsEvent], handler: Handler) -> None:
        handlers = self._by_topic.get(topic, [])
        if handler in handlers:
            handlers.remove(handler)
            if not handlers:
                del self._by_topic[topic]
        self._refresh_active()

    def unsubscribe_all(self, handler: Handler) -> None:
        if handler in self._wildcard:
            self._wildcard.remove(handler)
        self._refresh_active()

    def clear(self) -> None:
        """Detach every handler."""
        self._by_topic.clear()
        self._wildcard.clear()
        self.active = False

    def _refresh_active(self) -> None:
        self.active = bool(self._by_topic or self._wildcard)

    @property
    def subscriber_count(self) -> int:
        return sum(len(h) for h in self._by_topic.values()) + len(self._wildcard)

    # -- publication -------------------------------------------------------

    def publish(self, stamped: Stamped) -> None:
        """Deliver ``stamped`` synchronously to matching handlers."""
        if not self.active:
            return
        for handler in self._by_topic.get(type(stamped.event), ()):
            handler(stamped)
        for handler in self._wildcard:
            handler(stamped)

    def __repr__(self) -> str:
        return (
            f"<EventBus {self.subscriber_count} subscribers, "
            f"{len(self._by_topic)} topics>"
        )
