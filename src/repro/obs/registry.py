"""The persistent run registry: every run leaves a comparable record.

A registry is one append-only JSONL file (``.repro_runs/registry.jsonl``
by default, ``REPRO_RUNS_DIR`` overrides the directory) where demos,
sweeps and benches deposit a summary record — run identity, git SHA,
machine fingerprint (shared with :mod:`repro.perf`), headline metrics
and (when the flight recorder ran) the sampled gauge timelines.  The
``python -m repro runs`` CLI lists, renders and diffs records, flagging
paper-shape regressions (Fig. 6/7 gain ratios) between any two runs.

Record schema (one JSON object per line)::

    {"rec_id": "0003/demo-seed0", "run_id": "demo-seed0",
     "kind": "demo", "recorded_at": "...", "git_sha": "...",
     "machine": "linux-x86_64-...", "metrics": {"gain": 1.8, ...},
     "gauges": {"staging.lead_bytes": {"t": [...], "v": [...]}, ...},
     "sketches": {"wide.fetch_latency": {"kind": "quantile", ...}, ...},
     "meta": {...}}

Forward compatibility mirrors the trace reader: unknown top-level keys
are preserved on load, and records missing optional keys get empty
defaults, so old registries keep loading as the schema grows.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from typing import Optional

try:  # advisory append locking (POSIX; no-op where unavailable)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

from repro import perf

#: Default registry directory (override with ``REPRO_RUNS_DIR``).
DEFAULT_DIR = ".repro_runs"
REGISTRY_FILE = "registry.jsonl"

#: Relative drop in a ``gain``-family metric that counts as a
#: paper-shape regression in :func:`diff_records`.
GAIN_REGRESSION_THRESHOLD = 0.15

_git_sha_cache: Optional[str] = None

#: Gauge-name filters treat ``.`` and ``_`` as the same separator.
_FOLD = str.maketrans("._", "--")


def _fold(name: str) -> str:
    return name.translate(_FOLD)


def git_sha() -> str:
    """The current commit SHA (cached; ``"unknown"`` outside a repo)."""
    global _git_sha_cache
    if _git_sha_cache is None:
        try:
            _git_sha_cache = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True, text=True, timeout=5, check=True,
            ).stdout.strip() or "unknown"
        except (OSError, subprocess.SubprocessError):
            _git_sha_cache = "unknown"
    return _git_sha_cache


@dataclass
class RunRecord:
    """One registry line, parsed."""

    rec_id: str
    run_id: str
    kind: str
    recorded_at: str
    git_sha: str
    machine: str
    #: Staging policy that produced the run ("" = system default —
    #: pre-policy-framework records load with this default).
    policy: str = ""
    metrics: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    #: Serialized fixed-memory sketches (see :mod:`repro.obs.sketch`):
    #: ``{name: sketch.to_json()}``.  Bounded-size distribution
    #: summaries, unlike ``gauges``' full timelines.
    sketches: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    #: Top-level keys written by a newer version, preserved verbatim.
    extra: dict = field(default_factory=dict, repr=False)

    @classmethod
    def from_json(cls, payload: dict) -> "RunRecord":
        known = {
            "rec_id", "run_id", "kind", "recorded_at", "git_sha",
            "machine", "policy", "metrics", "gauges", "sketches", "meta",
        }
        return cls(
            rec_id=str(payload.get("rec_id", "")),
            run_id=str(payload.get("run_id", "")),
            kind=str(payload.get("kind", "run")),
            recorded_at=str(payload.get("recorded_at", "")),
            git_sha=str(payload.get("git_sha", "unknown")),
            machine=str(payload.get("machine", "")),
            policy=str(payload.get("policy", "")),
            metrics=dict(payload.get("metrics", {})),
            gauges=dict(payload.get("gauges", {})),
            sketches=dict(payload.get("sketches", {})),
            meta=dict(payload.get("meta", {})),
            extra={k: v for k, v in payload.items() if k not in known},
        )

    def to_json(self) -> dict:
        payload = dict(self.extra)
        payload.update(
            rec_id=self.rec_id,
            run_id=self.run_id,
            kind=self.kind,
            recorded_at=self.recorded_at,
            git_sha=self.git_sha,
            machine=self.machine,
            policy=self.policy,
            metrics=self.metrics,
            gauges=self.gauges,
            sketches=self.sketches,
            meta=self.meta,
        )
        return payload

    def gauge_series(self, metric: str) -> dict[str, list]:
        """Gauge timelines whose name contains ``metric`` (substring).

        ``.`` and ``_`` are interchangeable in the filter, so
        ``cache_occupancy`` matches ``cache.occupancy_bytes.*``.
        """
        wanted = _fold(metric)
        return {
            name: series
            for name, series in self.gauges.items()
            if wanted in _fold(name)
        }


class RunRegistry:
    """Append/load/diff interface over one registry JSONL file."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = (
            directory
            or os.environ.get("REPRO_RUNS_DIR")
            or DEFAULT_DIR
        )
        self.path = os.path.join(self.directory, REGISTRY_FILE)

    # -- writing -------------------------------------------------------------

    def append(
        self,
        run_id: str,
        kind: str,
        metrics: dict,
        gauges: Optional[dict] = None,
        meta: Optional[dict] = None,
        policy: str = "",
        sketches: Optional[dict] = None,
    ) -> RunRecord:
        """Append one record; assigns a unique ``rec_id`` and returns it.

        Appends are serialized across concurrent writers (parallel
        sweep workers, a live HTTP service, several CLIs sharing one
        registry) with an advisory ``fcntl`` lock held across the
        sequence-number read *and* the write, so records never tear
        into unparseable lines and ``rec_id`` sequence numbers stay
        unique.  On platforms without ``fcntl`` the append degrades to
        the historical unlocked single-writer behaviour.
        """
        os.makedirs(self.directory, exist_ok=True)
        with open(self.path, "a+", encoding="utf-8") as fh:
            if fcntl is not None:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                fh.seek(0)
                seq = sum(1 for line in fh if line.strip()) + 1
                record = RunRecord(
                    rec_id=f"{seq:04d}/{run_id}",
                    run_id=run_id,
                    kind=kind,
                    recorded_at=time.strftime(
                        "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
                    ),
                    git_sha=git_sha(),
                    machine=perf.fingerprint(),
                    policy=policy,
                    metrics=dict(metrics),
                    gauges=dict(gauges or {}),
                    sketches=dict(sketches or {}),
                    meta=dict(meta or {}),
                )
                # Mode "a" writes always land at EOF, even after the
                # seek above; one write call keeps the line whole.
                fh.write(
                    json.dumps(record.to_json(), separators=(",", ":"))
                    + "\n"
                )
                fh.flush()
            finally:
                if fcntl is not None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
        return record

    # -- reading -------------------------------------------------------------

    def _lines(self):
        try:
            with open(self.path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        yield line
        except FileNotFoundError:
            return

    def records(self) -> list[RunRecord]:
        return [RunRecord.from_json(json.loads(line)) for line in self._lines()]

    def find(self, key: str) -> RunRecord:
        """Resolve ``key`` to one record.

        Exact ``rec_id`` match wins; otherwise the *latest* record
        whose ``run_id`` (or rec_id) contains ``key``.  Raises
        :class:`KeyError` when nothing matches.
        """
        records = self.records()
        for record in records:
            if record.rec_id == key:
                return record
        matches = [
            record for record in records
            if key in record.run_id or key in record.rec_id
        ]
        if not matches:
            raise KeyError(
                f"no registry record matches {key!r} "
                f"({len(records)} records in {self.path})"
            )
        return matches[-1]


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MetricDelta:
    """One shared metric compared across two records."""

    name: str
    value_a: float
    value_b: float
    #: B relative to A (``None`` when A is zero).
    ratio: Optional[float]
    #: True when this is a gain-family metric that regressed past the
    #: paper-shape threshold.
    regression: bool


def diff_records(
    a: RunRecord,
    b: RunRecord,
    gain_threshold: float = GAIN_REGRESSION_THRESHOLD,
) -> list[MetricDelta]:
    """Compare the numeric metrics two records share, A → B.

    Metrics whose name contains ``gain`` carry the paper's headline
    shape (Fig. 6/7 Xftp-over-SoftStage ratios): when B falls more
    than ``gain_threshold`` below A, the delta is flagged as a
    regression.  Everything else is informational.
    """
    deltas: list[MetricDelta] = []
    for name in sorted(set(a.metrics) & set(b.metrics)):
        va, vb = a.metrics[name], b.metrics[name]
        if not isinstance(va, (int, float)) or not isinstance(vb, (int, float)):
            continue
        ratio = vb / va if va else None
        regression = (
            "gain" in name
            and ratio is not None
            and ratio < 1.0 - gain_threshold
        )
        deltas.append(
            MetricDelta(
                name=name,
                value_a=float(va),
                value_b=float(vb),
                ratio=ratio,
                regression=regression,
            )
        )
    return deltas


def regressions(deltas: list[MetricDelta]) -> list[MetricDelta]:
    return [delta for delta in deltas if delta.regression]


# ---------------------------------------------------------------------------
# JSON payloads (shared by ``repro runs --json`` and the HTTP service)
# ---------------------------------------------------------------------------


def record_summary(record: RunRecord) -> dict:
    """The light listing shape: identity + metrics, gauge *names* only.

    One serialization path for ``repro runs list --json`` and the
    service's ``GET /runs``, so CI scripts never scrape table text.
    """
    return {
        "rec_id": record.rec_id,
        "run_id": record.run_id,
        "kind": record.kind,
        "recorded_at": record.recorded_at,
        "git_sha": record.git_sha,
        "machine": record.machine,
        "policy": record.policy,
        "metrics": record.metrics,
        "gauges": sorted(record.gauges),
        "sketches": sorted(record.sketches),
        "meta": record.meta,
    }


def list_payload(registry: "RunRegistry") -> dict:
    """``{"registry": path, "records": [summary, ...]}``."""
    return {
        "registry": registry.path,
        "records": [record_summary(r) for r in registry.records()],
    }


def diff_payload(
    a: RunRecord,
    b: RunRecord,
    deltas: Optional[list[MetricDelta]] = None,
) -> dict:
    """The diff in JSON shape, regressions called out separately.

    Shared by ``repro runs diff --json`` and ``GET /diff`` so the CI
    regression gate and the CLI agree byte-for-byte on what regressed.
    """
    if deltas is None:
        deltas = diff_records(a, b)
    return {
        "a": a.rec_id,
        "b": b.rec_id,
        "deltas": [
            {
                "name": d.name,
                "a": d.value_a,
                "b": d.value_b,
                "ratio": d.ratio,
                "regression": d.regression,
            }
            for d in deltas
        ],
        "regressions": [d.name for d in deltas if d.regression],
    }


# ---------------------------------------------------------------------------
# Record builders
# ---------------------------------------------------------------------------


def record_from_result(result, kind: str = "download") -> tuple[str, dict, dict]:
    """(run_id, metrics, gauges) for one ExperimentResult.

    Gauge timelines come out of the result's collector under the
    ``gauge.<run_id>.`` namespace and are stored stripped of it, as
    ``{name: {"t": [...], "v": [...]}}`` (compact JSONL columns).
    Serialized sketches (when the run was built with ``sketches=True``)
    are fetched separately via :func:`sketches_from_result`.
    """
    download = result.download
    metrics = {
        "download_time": result.download_time,
        "throughput_bps": result.throughput_bps,
        "bytes_received": download.bytes_received,
        "chunks_completed": download.chunks_completed,
        "chunks_from_edge": download.chunks_from_edge,
        "chunks_from_origin": download.chunks_from_origin,
        "fallbacks": download.fallbacks,
        "handoffs": download.handoffs,
        "staging_signals": download.staging_signals,
    }
    gauges: dict[str, dict] = {}
    if result.metrics is not None:
        prefix = f"gauge.{result.run_id}."
        for name, points in result.metrics.timelines(prefix).items():
            times = [t for t, _v in points]
            values = [v for _t, v in points]
            gauges[name[len(prefix):]] = {"t": times, "v": values}
    return result.run_id, metrics, gauges


def sketches_from_result(result) -> dict:
    """The result's serialized sketch set (``{}`` when not recorded)."""
    recorder = getattr(result, "sketches", None)
    return recorder.to_json() if recorder is not None else {}
