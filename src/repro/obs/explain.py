"""Regression root-cause attribution: *why* did run B regress from A?

``runs diff`` can flag *that* the paper's headline gain moved; this
module explains *where the time went*.  Both runs' wide-event records
(live ``--emit-wide`` files or ``repro trace wide`` replays — byte
identical either way) are folded into a :class:`PhaseProfile`, a
fixed-size decomposition of the download into the phases the paper's
Fig. 3 pipeline defines:

``fetch.edge`` / ``fetch.origin`` / ``fetch.fallback``
    Chunk fetch time, split by serving network — the edge-vs-origin
    mix is the mechanism behind the gain curve.
``stage_stall``
    Time fetches spent blocked waiting for staging to finish
    (``max(0, -ready_wait_s)`` per chunk): the cost of signalling too
    late or staging too slowly.
``gap.unmasked``
    Coverage-gap time *not* masked by staged content
    (``gap_time_s - masked_total_s``): dead air the staging pipeline
    failed to hide.

Profiles subtract phase-by-phase; each :class:`Contributor` carries
its share of the total download-time delta, and the ranked, rendered
report (:func:`render_why`) names the phase that moved the metric.
Everything is plain arithmetic over the records — deterministic, so
the report is byte-identical whether the records came from the live
run or its replayed trace.
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional

#: Phase keys in report order (ranking reorders by |delta|).
PHASES = (
    "fetch.edge",
    "fetch.origin",
    "fetch.fallback",
    "stage_stall",
    "gap.unmasked",
)

#: Event-count keys carried alongside the time phases.
COUNTERS = (
    "chunks",
    "chunks_edge",
    "chunks_origin",
    "chunks_fallback",
    "re_signals",
    "stage_failures",
    "stale_responses",
    "handoffs_completed",
    "dropped_packets",
)


@dataclass
class PhaseProfile:
    """One run's wide events folded into a fixed phase decomposition."""

    run_id: str = ""
    #: Simulated end of the run (the run-summary record's ``t_end``).
    t_end: float = 0.0
    #: Seconds per phase, keyed by :data:`PHASES`.
    phases: dict = field(default_factory=dict)
    #: Event counts, keyed by :data:`COUNTERS`.
    counters: dict = field(default_factory=dict)
    #: Last serving network seen (edge handoffs shift it).
    network: str = ""

    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "PhaseProfile":
        profile = cls(
            phases={name: 0.0 for name in PHASES},
            counters={name: 0 for name in COUNTERS},
        )
        gap_time = 0.0
        masked_total = 0.0
        for record in records:
            kind = record.get("kind")
            if not profile.run_id and record.get("run"):
                profile.run_id = record["run"]
            if kind == "chunk":
                source = record.get("source", "origin")
                latency = record.get("fetch_latency") or 0.0
                profile.phases[f"fetch.{source}"] = (
                    profile.phases.get(f"fetch.{source}", 0.0) + latency
                )
                ready_wait = record.get("ready_wait_s")
                if isinstance(ready_wait, (int, float)) and ready_wait < 0:
                    profile.phases["stage_stall"] += -ready_wait
                profile.counters["chunks"] += 1
                key = f"chunks_{source}"
                if key in profile.counters:
                    profile.counters[key] += 1
                for counter in ("re_signals", "stage_failures",
                                "stale_responses"):
                    profile.counters[counter] += record.get(counter, 0) or 0
            elif kind == "run":
                profile.t_end = record.get("t_end", 0.0) or 0.0
                profile.network = record.get("network", "") or ""
                gap_time = record.get("gap_time_s", 0.0) or 0.0
                masked_total = record.get("masked_total_s", 0.0) or 0.0
                for counter in ("handoffs_completed", "dropped_packets"):
                    profile.counters[counter] = record.get(counter, 0) or 0
        profile.phases["gap.unmasked"] = max(0.0, gap_time - masked_total)
        return profile


@dataclass(frozen=True)
class Contributor:
    """One phase's movement between two runs."""

    name: str
    value_a: float
    value_b: float
    #: Seconds (time phases) or events (counters) B minus A.
    delta: float
    #: This phase's share of the total download-time delta (``None``
    #: when the total didn't move).
    share: Optional[float]


@dataclass
class Explanation:
    """The full A→B attribution, ready to rank and render."""

    run_a: str
    run_b: str
    t_end_a: float
    t_end_b: float
    #: Time phases, ranked by \|delta\| (largest mover first; name
    #: breaks ties so the ranking is total and deterministic).
    contributors: list
    #: Count movements (informational, not time-denominated).
    counters: list
    #: Optional headline metrics carried from the registry records.
    metrics_a: dict = field(default_factory=dict)
    metrics_b: dict = field(default_factory=dict)

    @property
    def time_delta(self) -> float:
        return self.t_end_b - self.t_end_a

    @property
    def verdict(self) -> str:
        """One line naming the largest mover."""
        if not self.contributors or self.time_delta == 0.0:
            return "no download-time movement to attribute"
        top = self.contributors[0]
        if top.delta == 0.0:
            return "no phase moved; delta sits outside the profile"
        direction = "slower" if self.time_delta > 0 else "faster"
        pct = (
            f" ({abs(top.share):.0%} of the change)"
            if top.share is not None else ""
        )
        return (
            f"{self.run_b} is {abs(self.time_delta):.3f}s {direction} "
            f"than {self.run_a}; largest contributor: {top.name} "
            f"{top.delta:+.3f}s{pct}"
        )


def explain(
    records_a: Iterable[dict],
    records_b: Iterable[dict],
    metrics_a: Optional[dict] = None,
    metrics_b: Optional[dict] = None,
    label_a: str = "",
    label_b: str = "",
) -> Explanation:
    """Attribute the A→B download-time delta to pipeline phases."""
    profile_a = PhaseProfile.from_records(records_a)
    profile_b = PhaseProfile.from_records(records_b)
    time_delta = profile_b.t_end - profile_a.t_end
    contributors = []
    for name in PHASES:
        va = profile_a.phases.get(name, 0.0)
        vb = profile_b.phases.get(name, 0.0)
        delta = vb - va
        contributors.append(Contributor(
            name=name, value_a=va, value_b=vb, delta=delta,
            share=(delta / time_delta) if time_delta else None,
        ))
    contributors.sort(key=lambda c: (-abs(c.delta), c.name))
    counters = []
    for name in COUNTERS:
        va = profile_a.counters.get(name, 0)
        vb = profile_b.counters.get(name, 0)
        counters.append(Contributor(
            name=name, value_a=va, value_b=vb, delta=vb - va, share=None,
        ))
    return Explanation(
        run_a=label_a or profile_a.run_id or "A",
        run_b=label_b or profile_b.run_id or "B",
        t_end_a=profile_a.t_end,
        t_end_b=profile_b.t_end,
        contributors=contributors,
        counters=counters,
        metrics_a=dict(metrics_a or {}),
        metrics_b=dict(metrics_b or {}),
    )


# ---------------------------------------------------------------------------
# Rendering (CLI text + HTTP JSON share one source of truth)
# ---------------------------------------------------------------------------


def why_payload(explanation: Explanation) -> dict:
    """The ``--json`` / ``GET .../explain`` shape."""
    def rows(contributors):
        return [
            {
                "name": c.name, "a": c.value_a, "b": c.value_b,
                "delta": c.delta, "share": c.share,
            }
            for c in contributors
        ]

    payload = {
        "a": explanation.run_a,
        "b": explanation.run_b,
        "t_end_a": explanation.t_end_a,
        "t_end_b": explanation.t_end_b,
        "time_delta": explanation.time_delta,
        "verdict": explanation.verdict,
        "contributors": rows(explanation.contributors),
        "counters": rows(explanation.counters),
    }
    gain_a = explanation.metrics_a.get("gain")
    gain_b = explanation.metrics_b.get("gain")
    if isinstance(gain_a, (int, float)) and isinstance(gain_b, (int, float)):
        payload["gain_a"] = gain_a
        payload["gain_b"] = gain_b
        payload["gain_delta"] = gain_b - gain_a
    return payload


def render_why(explanation: Explanation) -> str:
    """The deterministic plain-text "why" report."""
    from repro.experiments.report import render_table

    lines = [f"why: {explanation.run_a} -> {explanation.run_b}", ""]
    gain_a = explanation.metrics_a.get("gain")
    gain_b = explanation.metrics_b.get("gain")
    if isinstance(gain_a, (int, float)) and isinstance(gain_b, (int, float)):
        lines.append(
            f"gain: {gain_a:.4g} -> {gain_b:.4g} "
            f"({gain_b - gain_a:+.4g})"
        )
    lines.append(
        f"download time: {explanation.t_end_a:.3f}s -> "
        f"{explanation.t_end_b:.3f}s ({explanation.time_delta:+.3f}s)"
    )
    lines.append("")
    rows = [
        (
            c.name,
            f"{c.value_a:.3f}",
            f"{c.value_b:.3f}",
            f"{c.delta:+.3f}",
            "-" if c.share is None else f"{c.share:+.0%}",
        )
        for c in explanation.contributors
    ]
    lines.append(render_table(
        "phase contributors (ranked)",
        ("phase", "a (s)", "b (s)", "delta", "share"),
        rows,
    ))
    moved = [c for c in explanation.counters if c.delta]
    if moved:
        lines.append("")
        lines.append(render_table(
            "event counts that moved",
            ("counter", "a", "b", "delta"),
            [(c.name, f"{c.value_a:g}", f"{c.value_b:g}", f"{c.delta:+g}")
             for c in moved],
        ))
    lines.append("")
    lines.append(explanation.verdict)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Record loading (shared by the CLI and the HTTP service)
# ---------------------------------------------------------------------------


def load_wide_for_run(wide_dir: str, run_id: str) -> list[dict]:
    """All wide records for ``run_id`` across ``wide_dir``'s JSONL files.

    Files are visited in sorted order so the result is stable across
    filesystems; record order within a file is the emission order.
    """
    from repro.obs.wide import read_wide

    records = []
    for path in sorted(glob.glob(os.path.join(wide_dir, "*.jsonl"))):
        for record in read_wide(path):
            if record.get("run") == run_id:
                records.append(record)
    return records


def explain_registry_pair(registry, key_a: str, key_b: str,
                          wide_dir: Optional[str] = None) -> Explanation:
    """Resolve two registry keys and attribute B's movement from A.

    Raises :class:`KeyError` for an unknown key and
    :class:`ValueError` when a run has no wide records to profile.
    """
    record_a = registry.find(key_a)
    record_b = registry.find(key_b)
    directory = wide_dir or os.path.join(registry.directory, "wide")
    records_a = load_wide_for_run(directory, record_a.run_id)
    records_b = load_wide_for_run(directory, record_b.run_id)
    for rec, records in ((record_a, records_a), (record_b, records_b)):
        if not records:
            raise ValueError(
                f"no wide events for {rec.run_id!r} under {directory} "
                f"(re-run with --emit-wide or derive them with "
                f"'repro trace wide')"
            )
    return explain(
        records_a, records_b,
        metrics_a=record_a.metrics, metrics_b=record_b.metrics,
        label_a=record_a.rec_id, label_b=record_b.rec_id,
    )
