"""Video-on-Demand over SoftStage (§V "Extension to Video Streaming").

A VoD player with buffer-based rate adaptation (BBA-style [24]): the
next segment's quality is a function of the playback buffer level —
below the *reservoir* pick the lowest rung, above the *cushion* the
highest, linear in between.  Each (segment, quality) rendition is an
independent chunk published by the origin, so the player runs over the
same chunk-fetch machinery as everything else; with SoftStage
underneath, upcoming segments get staged to the edge while the buffer
drains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.sim import Simulator
from repro.util.validation import check_positive
from repro.xcache.publisher import ContentPublisher, PublishedContent


@dataclass(frozen=True)
class VideoLadder:
    """An encoding ladder: one bitrate per quality rung."""

    name: str = "sdr-default"
    #: Bits/second per rung, lowest first (YouTube SDR-ish ladder).
    bitrates: tuple[float, ...] = (1e6, 2.5e6, 5e6, 8e6, 16e6)
    segment_seconds: float = 2.0

    def segment_bytes(self, rung: int) -> int:
        return max(int(self.bitrates[rung] * self.segment_seconds / 8), 1)

    @property
    def rungs(self) -> int:
        return len(self.bitrates)


def publish_video(
    publisher: ContentPublisher,
    name: str,
    duration_seconds: float,
    ladder: Optional[VideoLadder] = None,
) -> dict[int, PublishedContent]:
    """Publish every rendition of a video; returns rung -> manifest."""
    ladder = ladder or VideoLadder()
    check_positive("duration_seconds", duration_seconds)
    segments = max(int(duration_seconds / ladder.segment_seconds), 1)
    renditions = {}
    for rung in range(ladder.rungs):
        seg_bytes = ladder.segment_bytes(rung)
        renditions[rung] = publisher.publish_synthetic(
            f"{name}@r{rung}", seg_bytes * segments, seg_bytes
        )
    return renditions


@dataclass
class PlaybackStats:
    """What the player reports at the end of a session."""

    segments_played: int = 0
    rebuffer_events: int = 0
    rebuffer_seconds: float = 0.0
    startup_delay: float = 0.0
    quality_switches: int = 0
    rung_history: list[int] = field(default_factory=list)

    @property
    def mean_rung(self) -> float:
        if not self.rung_history:
            return 0.0
        return sum(self.rung_history) / len(self.rung_history)


class BufferBasedPlayer:
    """A BBA-style VoD client over any chunk-fetch function.

    ``fetch`` is a callable ``(cid) -> sim process`` — pass
    ``SoftStageClient.manager.chunk_manager.xfetch_chunk_star`` to play
    through SoftStage, or a plain fetcher's address-based wrapper for
    the baseline.
    """

    def __init__(
        self,
        sim: Simulator,
        renditions: dict[int, PublishedContent],
        fetch: Callable,
        ladder: Optional[VideoLadder] = None,
        reservoir_seconds: float = 5.0,
        cushion_seconds: float = 20.0,
        startup_segments: int = 2,
    ) -> None:
        if not renditions:
            raise ConfigurationError("no renditions published")
        self.sim = sim
        self.renditions = renditions
        self.fetch = fetch
        self.ladder = ladder or VideoLadder()
        if reservoir_seconds >= cushion_seconds:
            raise ConfigurationError("reservoir must be below cushion")
        self.reservoir = reservoir_seconds
        self.cushion = cushion_seconds
        self.startup_segments = max(startup_segments, 1)
        self.stats = PlaybackStats()

    # -- rate adaptation -----------------------------------------------------

    def choose_rung(self, buffer_seconds: float) -> int:
        """Buffer-based quality map (piecewise linear)."""
        top = self.ladder.rungs - 1
        if buffer_seconds <= self.reservoir:
            return 0
        if buffer_seconds >= self.cushion:
            return top
        fraction = (buffer_seconds - self.reservoir) / (
            self.cushion - self.reservoir
        )
        return min(int(fraction * self.ladder.rungs), top)

    # -- playback ----------------------------------------------------------------

    def play(self, max_segments: Optional[int] = None):
        """Process: stream the video; returns PlaybackStats."""
        ladder = self.ladder
        total_segments = len(self.renditions[0].chunks)
        if max_segments is not None:
            total_segments = min(total_segments, max_segments)

        stats = self.stats
        buffer_seconds = 0.0
        last_rung: Optional[int] = None
        playback_started = False
        session_start = self.sim.now
        last_drain_at = self.sim.now

        for index in range(total_segments):
            # Drain the buffer by the wall time since the last fetch.
            now = self.sim.now
            if playback_started:
                drained = now - last_drain_at
                if drained > buffer_seconds:
                    stats.rebuffer_events += 1
                    stats.rebuffer_seconds += drained - buffer_seconds
                    buffer_seconds = 0.0
                else:
                    buffer_seconds -= drained
            last_drain_at = now

            rung = self.choose_rung(buffer_seconds)
            if last_rung is not None and rung != last_rung:
                stats.quality_switches += 1
            last_rung = rung
            stats.rung_history.append(rung)

            chunk = self.renditions[rung].chunks[index]
            yield self.sim.process(self.fetch(chunk.cid))

            buffer_seconds += ladder.segment_seconds
            stats.segments_played += 1
            if not playback_started and stats.segments_played >= self.startup_segments:
                playback_started = True
                stats.startup_delay = self.sim.now - session_start
                last_drain_at = self.sim.now
        return stats
