"""Web-object workloads (§V "Extension to ... Web").

A page is a mixed-size set of objects (HTML, scripts, images) with a
small dependency depth: the root object gates discovery of the rest,
which then fetch in order.  Object sizes follow the heavy-tailed mix
typical of mobile pages.  Published as chunks, the workload runs over
the same fetch machinery as the FTP-style downloads, so SoftStage's
staging benefits page loads in intermittent coverage too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim import Simulator
from repro.util.validation import check_positive
from repro.xcache.publisher import ContentPublisher, PublishedContent


@dataclass(frozen=True)
class PageSpec:
    """Composition of a synthetic web page."""

    name: str
    #: Root document size (bytes).
    root_bytes: int = 60_000
    #: Number of subresources.
    subresources: int = 12
    #: Lognormal body-size parameters for subresources (bytes).
    size_median: float = 40_000.0
    size_sigma: float = 1.1
    max_object_bytes: int = 2_000_000


def generate_page(
    spec: PageSpec, rng: random.Random
) -> list[int]:
    """Object sizes for one page (root first)."""
    check_positive("root_bytes", spec.root_bytes)
    sizes = [spec.root_bytes]
    import math

    mu = math.log(spec.size_median)
    for _ in range(spec.subresources):
        size = int(min(rng.lognormvariate(mu, spec.size_sigma),
                       spec.max_object_bytes))
        sizes.append(max(size, 1_000))
    return sizes


def publish_page(
    publisher: ContentPublisher,
    spec: PageSpec,
    rng: random.Random,
) -> PublishedContent:
    """Publish a page as one content whose chunks are its objects.

    Chunk boundaries follow object boundaries (one chunk per object up
    to the publisher's chunk size), so the manifest order is the fetch
    order.
    """
    sizes = generate_page(spec, rng)
    total = sum(sizes)
    # One chunk per object is modeled by publishing with the largest
    # object as chunk size and padding the layout; for simplicity and
    # fidelity to the chunk machinery we publish objects concatenated
    # with a chunk size equal to the median object.
    chunk_size = max(int(total / max(len(sizes), 1)), 10_000)
    return publisher.publish_synthetic(spec.name, total, chunk_size)


@dataclass
class PageLoadResult:
    page: str
    objects: int
    bytes_total: int
    load_time: float
    #: Time until the root object (first chunk) arrived.
    first_paint: float


class WebClient:
    """Loads pages through any chunk-fetch function."""

    def __init__(
        self,
        sim: Simulator,
        fetch: Callable,
    ) -> None:
        self.sim = sim
        self.fetch = fetch
        self.loads: list[PageLoadResult] = []

    def load_page(self, content: PublishedContent):
        """Process: fetch root, then subresources; returns the result."""
        started = self.sim.now
        first_paint: Optional[float] = None
        total = 0
        for chunk in content.chunks:
            yield self.sim.process(self.fetch(chunk.cid))
            if first_paint is None:
                first_paint = self.sim.now - started
            total += chunk.size_bytes
        result = PageLoadResult(
            page=content.name,
            objects=len(content.chunks),
            bytes_total=total,
            load_time=self.sim.now - started,
            first_paint=first_paint or 0.0,
        )
        self.loads.append(result)
        return result
