"""Applications: the workloads that run over the substrate.

- :mod:`repro.apps.server` — the origin content server (publish +
  serve);
- :mod:`repro.apps.ftp` — the Xftp baseline: an FTP-style chunked
  downloader with standard RSS-greedy mobility handling but *no*
  staging (what SoftStage is compared against throughout §IV);
- :mod:`repro.apps.video` — a VoD player with buffer-based rate
  adaptation (the §V extension);
- :mod:`repro.apps.web` — a mixed-size web-object workload (§V).
"""

from repro.apps.ftp import XftpClient
from repro.apps.server import ContentServer
from repro.apps.video import BufferBasedPlayer, VideoLadder, publish_video
from repro.apps.web import PageSpec, WebClient, publish_page

__all__ = [
    "BufferBasedPlayer",
    "ContentServer",
    "PageSpec",
    "VideoLadder",
    "WebClient",
    "XftpClient",
    "publish_page",
    "publish_video",
]
