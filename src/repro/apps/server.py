"""The origin content server.

Bundles what the paper's Server Host does: "listens to the client's
request, splits the target file into chunks and puts them into the
local cache for serving the clients" — a host, an XCache content
store, a publisher, and the serve daemon.
"""

from __future__ import annotations

from typing import Optional

from repro.net.nodes import Host
from repro.sim import Simulator
from repro.transport.chunkfetch import CacheDaemon
from repro.transport.config import TransportConfig, XIA_CHUNK
from repro.transport.reliable import TransportEndpoint
from repro.xcache.publisher import ContentPublisher, PublishedContent
from repro.xcache.store import ContentStore
from repro.xia.ids import XID


class ContentServer:
    """Origin server: publish content, serve chunk requests."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        nid: XID,
        config: Optional[TransportConfig] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.nid = nid
        self.store = ContentStore()
        self.publisher = ContentPublisher(self.store, nid, host.hid)
        self.endpoint = TransportEndpoint(sim, host, config or XIA_CHUNK)
        self.daemon = CacheDaemon(
            sim, host, self.store, self.endpoint, nid=nid
        )

    def publish(self, name: str, total_bytes: int, chunk_size: int) -> PublishedContent:
        """Split ``total_bytes`` of content into chunks and publish."""
        return self.publisher.publish_synthetic(name, total_bytes, chunk_size)

    def manifest(self, name: str) -> Optional[PublishedContent]:
        """The DAG information a client fetches before downloading."""
        return self.publisher.manifest(name)

    def __repr__(self) -> str:
        return f"<ContentServer {self.host.name} {len(self.publisher.published)} objects>"
