"""Xftp: the FTP-style baseline application (no staging).

Downloads a stream of chunks straight from the origin server using
XIA's standard ``XfetchChunk``.  Mobility is handled the way a stock
client would: associate with the strongest audible network
(RSS-greedy), migrate active transport sessions after each move, and
simply wait out coverage gaps.  Everything SoftStage adds — edge
staging, chunk-aware handoff, VNF discovery — is absent; this is the
comparison baseline used across the paper's Fig. 6 and Fig. 7.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.client import DownloadResult
from repro.core.config import SoftStageConfig
from repro.core.handoff import HandoffManager, RssGreedyPolicy
from repro.mobility.association import Association, AssociationController
from repro.mobility.scanner import Scanner
from repro.sim import Simulator
from repro.transport.chunkfetch import ChunkFetcher, FetchOutcome
from repro.transport.reliable import TransportEndpoint
from repro.xia.dag import DagAddress

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.nodes import Host
    from repro.xcache.publisher import PublishedContent


class XftpClient:
    """Baseline chunked downloader over vanilla XIA."""

    def __init__(
        self,
        sim: Simulator,
        host: "Host",
        endpoint: TransportEndpoint,
        controller: AssociationController,
        scanner: Scanner,
        config: Optional[SoftStageConfig] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.endpoint = endpoint
        self.controller = controller
        self.config = config or SoftStageConfig()
        self.handoff_manager = HandoffManager(
            sim, controller, scanner, policy=RssGreedyPolicy(), config=self.config
        )
        self.fetcher = ChunkFetcher(
            sim, endpoint, wait_for_connectivity=controller.wait_attached
        )
        controller.on_attach(self._on_attach)

    def _on_attach(self, association: Association) -> None:
        new_dag = DagAddress.host(self.host.hid, association.ap.nid)
        self.endpoint.migrate_receivers(new_dag)

    def download(self, content: "PublishedContent", deadline: Optional[float] = None):
        """Process: fetch every chunk from the origin, in order."""
        started = self.sim.now
        outcomes: list[FetchOutcome] = []
        bytes_received = 0
        for address in content.addresses:
            if deadline is not None and self.sim.now >= deadline:
                break
            fetch = self.sim.process(self.fetcher.fetch(address))
            if deadline is None:
                outcome = yield fetch
            else:
                result = yield self.sim.any_of(
                    [fetch, self.sim.timeout(max(deadline - self.sim.now, 0.0))]
                )
                if fetch not in result:
                    break
                outcome = result[fetch]
            outcomes.append(outcome)
            bytes_received += outcome.bytes_received
        return DownloadResult(
            content_name=content.name,
            bytes_received=bytes_received,
            duration=self.sim.now - started,
            chunks_completed=len(outcomes),
            chunks_total=len(content.chunks),
            chunks_from_edge=0,
            chunks_from_origin=len(outcomes),
            fallbacks=0,
            handoffs=self.handoff_manager.handoffs,
            staging_signals=0,
            outcomes=outcomes,
        )
