"""SoftStage reproduction: reactive content staging for vehicular content
delivery in the eXpressive Internet Architecture (XIA).

This package reimplements, on a from-scratch discrete-event simulator,
the full system described in *SoftStage: Content Staging for Vehicular
Content Delivery in the eXpressive Internet Architecture* (ICDCS 2019):
the XIA addressing/forwarding substrate, the XCache chunk cache, the
TCP-like chunk transports, the vehicular mobility/connectivity models,
and — as the core contribution — the client-side Staging Manager with
its reactive "Just-in-Time" staging algorithm, the edge-network Staging
VNF, and the chunk-aware handoff policy.

The most convenient entry points:

- :class:`repro.experiments.scenario.TestbedScenario` builds the paper's
  evaluation topology (Fig. 4) in one call,
- :class:`repro.core.client.SoftStageClient` and
  :class:`repro.apps.ftp.XftpClient` are the system under test and the
  baseline,
- :mod:`repro.experiments` contains one driver per paper table/figure.
"""

from repro.version import __version__

__all__ = ["__version__"]
