"""The content store backing an XCache instance."""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import CacheMiss, ChunkIntegrityError, ConfigurationError
from repro.obs.events import CacheEvicted, CacheHit, CacheMiss as CacheMissEvent
from repro.obs.events import CacheStored
from repro.xcache.chunk import Chunk
from repro.xcache.eviction import EvictionPolicy, LruEviction
from repro.xia.ids import PrincipalType, XID

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.probe import Probe


class ContentStore:
    """A capacity-bounded chunk store with pluggable eviction.

    Staged chunks can be *pinned* so cache pressure never evicts a
    chunk the Staging Manager has promised to a client before the
    client fetches it (pins are released on fetch or explicitly).
    """

    def __init__(
        self,
        capacity_bytes: float = float("inf"),
        eviction: Optional[EvictionPolicy] = None,
        clock=None,
        verify_on_insert: bool = True,
        probe: Optional["Probe"] = None,
        name: str = "store",
    ) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self.eviction = eviction or LruEviction()
        self._clock = clock or (lambda: 0.0)
        self.verify_on_insert = verify_on_insert
        #: Optional instrumentation probe (stores are not tied to a
        #: simulator, so the wiring code passes ``sim.probe`` in).
        self.probe = probe
        self.name = name
        self._chunks: dict[XID, Chunk] = {}
        self._pinned: set[XID] = set()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.rejected = 0

    # -- queries ------------------------------------------------------------

    def __contains__(self, cid: XID) -> bool:
        return cid in self._chunks

    def __len__(self) -> int:
        return len(self._chunks)

    def has(self, cid: XID) -> bool:
        self._drop_expired()
        return cid in self._chunks

    def get(self, cid: XID) -> Chunk:
        """Serve a chunk (counts a hit/miss; raises on miss)."""
        self._drop_expired()
        chunk = self._chunks.get(cid)
        probe = self.probe
        if chunk is None:
            self.misses += 1
            if probe is not None and probe.active:
                probe.emit(CacheMissEvent(store=self.name, cid=cid.short))
            raise CacheMiss(f"chunk {cid.short} not in store")
        self.hits += 1
        if probe is not None and probe.active:
            probe.emit(CacheHit(store=self.name, cid=cid.short))
        self.eviction.on_access(cid, self._clock())
        return chunk

    def peek(self, cid: XID) -> Optional[Chunk]:
        """Look up without touching hit/miss or recency state."""
        return self._chunks.get(cid)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- mutation ------------------------------------------------------------

    def put(self, chunk: Chunk, pin: bool = False) -> bool:
        """Insert a chunk, evicting as needed.  Returns False if the
        chunk cannot fit (bigger than capacity or everything pinned)."""
        if chunk.cid.principal_type is not PrincipalType.CID:
            raise ConfigurationError("store keys must be CIDs")
        if self.verify_on_insert and not chunk.verify():
            raise ChunkIntegrityError(
                f"chunk {chunk!r} failed integrity verification"
            )
        if chunk.cid in self._chunks:
            if pin:
                self._pinned.add(chunk.cid)
            return True
        if chunk.size_bytes > self.capacity_bytes:
            self.rejected += 1
            return False
        if not self._make_room(chunk.size_bytes):
            self.rejected += 1
            return False
        self._chunks[chunk.cid] = chunk
        self.used_bytes += chunk.size_bytes
        self.insertions += 1
        if pin:
            self._pinned.add(chunk.cid)
        probe = self.probe
        if probe is not None and probe.active:
            probe.emit(
                CacheStored(
                    store=self.name,
                    cid=chunk.cid.short,
                    size_bytes=chunk.size_bytes,
                    pinned=pin,
                )
            )
        self.eviction.on_insert(chunk.cid, self._clock())
        return True

    def remove(self, cid: XID) -> None:
        chunk = self._chunks.pop(cid, None)
        if chunk is not None:
            self.used_bytes -= chunk.size_bytes
            self._pinned.discard(cid)
            self.eviction.on_remove(cid)

    def pin(self, cid: XID) -> None:
        if cid not in self._chunks:
            raise CacheMiss(f"cannot pin absent chunk {cid.short}")
        self._pinned.add(cid)

    def unpin(self, cid: XID) -> None:
        self._pinned.discard(cid)

    def is_pinned(self, cid: XID) -> bool:
        return cid in self._pinned

    @property
    def pinned_count(self) -> int:
        """Chunks currently pinned (flight-recorder gauge)."""
        return len(self._pinned)

    def gauges(self) -> dict[str, float]:
        """The store's sampled-state snapshot (flight recorder)."""
        return {
            "occupancy_bytes": float(self.used_bytes),
            "chunks": float(len(self._chunks)),
            "pinned": float(len(self._pinned)),
        }

    # -- internals -------------------------------------------------------------

    def _evictable(self) -> list[XID]:
        return [cid for cid in self._chunks if cid not in self._pinned]

    def _make_room(self, needed: int) -> bool:
        self._drop_expired()
        while self.used_bytes + needed > self.capacity_bytes:
            candidates = self._evictable()
            if not candidates:
                return False
            victim = self.eviction.choose_victim(candidates, self._clock())
            if victim is None:
                victim = candidates[0]
            victim_chunk = self._chunks[victim]
            self.remove(victim)
            self.evictions += 1
            probe = self.probe
            if probe is not None and probe.active:
                probe.emit(
                    CacheEvicted(
                        store=self.name,
                        cid=victim.short,
                        size_bytes=victim_chunk.size_bytes,
                    )
                )
        return True

    def _drop_expired(self) -> None:
        for cid in self.eviction.expired(self._clock()):
            if cid not in self._pinned:
                self.remove(cid)

    def __repr__(self) -> str:
        cap = (
            "inf" if self.capacity_bytes == float("inf")
            else f"{self.capacity_bytes / 1e6:.0f}MB"
        )
        return (
            f"<ContentStore {len(self)} chunks, "
            f"{self.used_bytes / 1e6:.1f}MB/{cap}, hit_ratio={self.hit_ratio:.2f}>"
        )
