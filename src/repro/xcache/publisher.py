"""Publishing content: files -> chunk sequences -> addresses.

The server application "splits the target file into chunks and puts
them into the local cache for serving the clients" (paper §III-C); the
client then retrieves the content's DAG information.  ``PublishedContent``
is that DAG information: the ordered list of chunk CIDs with their
origin addresses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.util.validation import check_positive
from repro.xcache.chunk import Chunk
from repro.xcache.store import ContentStore
from repro.xia.dag import DagAddress
from repro.xia.ids import PrincipalType, XID


@dataclass(frozen=True)
class PublishedContent:
    """The manifest a client fetches before downloading content."""

    name: str
    total_bytes: int
    chunk_size: int
    chunks: tuple[Chunk, ...]
    addresses: tuple[DagAddress, ...] = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.chunks) != len(self.addresses):
            raise ConfigurationError("chunks and addresses must align")

    def __len__(self) -> int:
        return len(self.chunks)

    def address_of(self, cid: XID) -> DagAddress:
        for chunk, address in zip(self.chunks, self.addresses):
            if chunk.cid == cid:
                return address
        raise KeyError(f"cid {cid.short} not part of {self.name!r}")

    def chunk_of(self, cid: XID) -> Chunk:
        for chunk in self.chunks:
            if chunk.cid == cid:
                return chunk
        raise KeyError(f"cid {cid.short} not part of {self.name!r}")


class ContentPublisher:
    """Splits content into chunks and publishes it into an XCache store."""

    def __init__(self, store: ContentStore, nid: XID, hid: XID) -> None:
        if nid.principal_type is not PrincipalType.NID:
            raise ConfigurationError(f"expected a NID, got {nid!r}")
        if hid.principal_type is not PrincipalType.HID:
            raise ConfigurationError(f"expected a HID, got {hid!r}")
        self.store = store
        self.nid = nid
        self.hid = hid
        self.published: dict[str, PublishedContent] = {}

    def publish_synthetic(
        self, name: str, total_bytes: int, chunk_size: int
    ) -> PublishedContent:
        """Publish ``total_bytes`` of generated content as chunks.

        The final chunk may be short, exactly as a file split would be.
        """
        check_positive("total_bytes", total_bytes)
        check_positive("chunk_size", chunk_size)
        if name in self.published:
            raise ConfigurationError(f"content {name!r} already published")
        count = math.ceil(total_bytes / chunk_size)
        chunks = []
        for index in range(count):
            size = min(chunk_size, total_bytes - index * chunk_size)
            chunks.append(Chunk.synthetic(name, index, size))
        return self._publish(name, total_bytes, chunk_size, chunks)

    def publish_bytes(
        self, name: str, payload: bytes, chunk_size: int
    ) -> PublishedContent:
        """Publish real bytes (used by tests and small examples)."""
        check_positive("chunk_size", chunk_size)
        if not payload:
            raise ConfigurationError("payload must be non-empty")
        if name in self.published:
            raise ConfigurationError(f"content {name!r} already published")
        chunks = [
            Chunk.from_bytes(payload[start : start + chunk_size], name, index)
            for index, start in enumerate(range(0, len(payload), chunk_size))
        ]
        return self._publish(name, len(payload), chunk_size, chunks)

    def _publish(
        self, name: str, total_bytes: int, chunk_size: int, chunks: list[Chunk]
    ) -> PublishedContent:
        addresses = tuple(
            DagAddress.content(chunk.cid, self.nid, self.hid) for chunk in chunks
        )
        for chunk in chunks:
            if not self.store.put(chunk, pin=True):
                raise ConfigurationError(
                    f"origin store cannot hold published content {name!r}"
                )
        content = PublishedContent(
            name=name,
            total_bytes=total_bytes,
            chunk_size=chunk_size,
            chunks=tuple(chunks),
            addresses=addresses,
        )
        self.published[name] = content
        return content

    def manifest(self, name: str) -> Optional[PublishedContent]:
        return self.published.get(name)
