"""Chunks: self-certifying data objects.

A chunk's CID is the SHA-1 hash of its payload, so any receiver can
verify integrity without trusting the path it came over.  Simulated
chunks do not materialize multi-megabyte payloads: each chunk carries a
small *payload seed* (the bytes that uniquely determine the content)
and a declared ``size_bytes``; the CID is the hash of the seed plus the
size.  ``Chunk.from_bytes`` builds a chunk from real bytes when tests
want end-to-end hashing over actual data.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.errors import ChunkIntegrityError
from repro.util.validation import check_positive
from repro.xia.ids import PrincipalType, XID


class Chunk:
    """An immutable content chunk."""

    __slots__ = ("cid", "size_bytes", "seed", "content_name", "index")

    def __init__(
        self,
        seed: bytes,
        size_bytes: int,
        content_name: str = "",
        index: int = 0,
    ) -> None:
        check_positive("size_bytes", size_bytes)
        object.__setattr__(self, "seed", bytes(seed))
        object.__setattr__(self, "size_bytes", int(size_bytes))
        object.__setattr__(self, "content_name", content_name)
        object.__setattr__(self, "index", int(index))
        object.__setattr__(self, "cid", self.compute_cid(seed, size_bytes))

    def __setattr__(self, name, value):
        raise AttributeError("Chunk is immutable")

    @staticmethod
    def compute_cid(seed: bytes, size_bytes: int) -> XID:
        digest = hashlib.sha1(
            seed + size_bytes.to_bytes(8, "big")
        ).digest()
        return XID(PrincipalType.CID, digest)

    @classmethod
    def from_bytes(cls, payload: bytes, content_name: str = "", index: int = 0) -> "Chunk":
        """A chunk whose seed *is* the full payload (small test data)."""
        if not payload:
            raise ChunkIntegrityError("chunk payload must be non-empty")
        return cls(payload, len(payload), content_name=content_name, index=index)

    @classmethod
    def synthetic(
        cls, content_name: str, index: int, size_bytes: int
    ) -> "Chunk":
        """A chunk standing in for ``size_bytes`` of generated content."""
        seed = f"{content_name}#{index}".encode("utf-8")
        return cls(seed, size_bytes, content_name=content_name, index=index)

    def verify(self, claimed_cid: Optional[XID] = None) -> bool:
        """Recompute the CID and compare (the receiver-side check)."""
        expected = claimed_cid if claimed_cid is not None else self.cid
        return self.compute_cid(self.seed, self.size_bytes) == expected

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Chunk) and self.cid == other.cid

    def __hash__(self) -> int:
        return hash(self.cid)

    def __repr__(self) -> str:
        label = f"{self.content_name}#{self.index}" if self.content_name else "raw"
        return f"<Chunk {label} {self.size_bytes}B cid={self.cid.short}>"
