"""Pluggable cache-eviction policies.

The paper's §V ("Content Cache Management Policy") leaves cache policy
exploration to future work; we implement the standard family so the
ablation bench can compare them under staged-content workloads.

A policy tracks cache events (:meth:`on_insert`, :meth:`on_access`,
:meth:`on_remove`) and, when the store is full, nominates a victim CID.
Pinned entries are never nominated (the store filters them out by
passing only evictable candidates).
"""

from __future__ import annotations

import abc
import random
from collections import OrderedDict
from typing import Iterable, Optional

from repro.errors import ConfigurationError
from repro.xia.ids import XID


class EvictionPolicy(abc.ABC):
    """Interface for choosing cache victims."""

    @abc.abstractmethod
    def on_insert(self, cid: XID, now: float) -> None:
        """A chunk was inserted."""

    @abc.abstractmethod
    def on_access(self, cid: XID, now: float) -> None:
        """A cached chunk was served."""

    @abc.abstractmethod
    def on_remove(self, cid: XID) -> None:
        """A chunk left the store (evicted or explicitly removed)."""

    @abc.abstractmethod
    def choose_victim(self, candidates: Iterable[XID], now: float) -> Optional[XID]:
        """Pick a CID to evict from ``candidates`` (never empty)."""

    def expired(self, now: float) -> list[XID]:
        """CIDs that should be dropped regardless of pressure."""
        return []


class LruEviction(EvictionPolicy):
    """Evict the least recently used chunk."""

    def __init__(self) -> None:
        self._order: OrderedDict[XID, None] = OrderedDict()

    def on_insert(self, cid: XID, now: float) -> None:
        self._order[cid] = None
        self._order.move_to_end(cid)

    def on_access(self, cid: XID, now: float) -> None:
        if cid in self._order:
            self._order.move_to_end(cid)

    def on_remove(self, cid: XID) -> None:
        self._order.pop(cid, None)

    def choose_victim(self, candidates: Iterable[XID], now: float) -> Optional[XID]:
        allowed = set(candidates)
        for cid in self._order:
            if cid in allowed:
                return cid
        return None


class FifoEviction(EvictionPolicy):
    """Evict in insertion order, ignoring accesses."""

    def __init__(self) -> None:
        self._order: OrderedDict[XID, None] = OrderedDict()

    def on_insert(self, cid: XID, now: float) -> None:
        if cid not in self._order:
            self._order[cid] = None

    def on_access(self, cid: XID, now: float) -> None:
        pass

    def on_remove(self, cid: XID) -> None:
        self._order.pop(cid, None)

    def choose_victim(self, candidates: Iterable[XID], now: float) -> Optional[XID]:
        allowed = set(candidates)
        for cid in self._order:
            if cid in allowed:
                return cid
        return None


class LfuEviction(EvictionPolicy):
    """Evict the least frequently used chunk (ties: oldest insert)."""

    def __init__(self) -> None:
        self._counts: OrderedDict[XID, int] = OrderedDict()

    def on_insert(self, cid: XID, now: float) -> None:
        self._counts.setdefault(cid, 0)

    def on_access(self, cid: XID, now: float) -> None:
        if cid in self._counts:
            self._counts[cid] += 1

    def on_remove(self, cid: XID) -> None:
        self._counts.pop(cid, None)

    def choose_victim(self, candidates: Iterable[XID], now: float) -> Optional[XID]:
        allowed = set(candidates)
        best: Optional[XID] = None
        best_count = None
        for cid, count in self._counts.items():
            if cid in allowed and (best_count is None or count < best_count):
                best, best_count = cid, count
        return best


class RandomEviction(EvictionPolicy):
    """Evict a uniformly random chunk."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng or random.Random(0)
        self._members: set[XID] = set()

    def on_insert(self, cid: XID, now: float) -> None:
        self._members.add(cid)

    def on_access(self, cid: XID, now: float) -> None:
        pass

    def on_remove(self, cid: XID) -> None:
        self._members.discard(cid)

    def choose_victim(self, candidates: Iterable[XID], now: float) -> Optional[XID]:
        pool = sorted(set(candidates) & self._members)
        if not pool:
            return None
        return pool[self._rng.randrange(len(pool))]


class TtlEviction(EvictionPolicy):
    """Entries expire ``ttl`` seconds after insert; pressure evicts the oldest."""

    def __init__(self, ttl: float) -> None:
        if ttl <= 0:
            raise ConfigurationError(f"ttl must be > 0, got {ttl}")
        self.ttl = ttl
        self._inserted_at: OrderedDict[XID, float] = OrderedDict()

    def on_insert(self, cid: XID, now: float) -> None:
        self._inserted_at[cid] = now
        self._inserted_at.move_to_end(cid)

    def on_access(self, cid: XID, now: float) -> None:
        pass

    def on_remove(self, cid: XID) -> None:
        self._inserted_at.pop(cid, None)

    def choose_victim(self, candidates: Iterable[XID], now: float) -> Optional[XID]:
        allowed = set(candidates)
        for cid in self._inserted_at:
            if cid in allowed:
                return cid
        return None

    def expired(self, now: float) -> list[XID]:
        return [
            cid
            for cid, inserted in self._inserted_at.items()
            if now - inserted >= self.ttl
        ]


def make_eviction_policy(name: str, **kwargs) -> EvictionPolicy:
    """Factory by name: ``lru``, ``fifo``, ``lfu``, ``random``, ``ttl``."""
    registry = {
        "lru": LruEviction,
        "fifo": FifoEviction,
        "lfu": LfuEviction,
        "random": RandomEviction,
        "ttl": TtlEviction,
    }
    try:
        cls = registry[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown eviction policy {name!r}; choose from {sorted(registry)}"
        ) from None
    return cls(**kwargs)
