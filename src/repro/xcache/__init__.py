"""XCache: XIA's network-layer chunk cache.

XCache is the ICN element of XIA: a user-level daemon, present on end
hosts and routers, that stores *chunks* (self-certifying data objects)
and serves them whenever a packet with a CID destination arrives.
Content providers publish files into their local XCache as chunk
sequences; edge routers cache and serve chunks; the SoftStage VNF
(:mod:`repro.xcache.vnf`) is embedded inside the edge XCache.
"""

from repro.xcache.chunk import Chunk
from repro.xcache.eviction import (
    EvictionPolicy,
    FifoEviction,
    LfuEviction,
    LruEviction,
    RandomEviction,
    TtlEviction,
    make_eviction_policy,
)
from repro.xcache.store import ContentStore
from repro.xcache.publisher import ContentPublisher, PublishedContent

__all__ = [
    "Chunk",
    "ContentPublisher",
    "ContentStore",
    "EvictionPolicy",
    "FifoEviction",
    "LfuEviction",
    "LruEviction",
    "PublishedContent",
    "RandomEviction",
    "TtlEviction",
    "make_eviction_policy",
]
