"""The chunk request/serve protocol (XfetchChunk's data path).

A client fetches a chunk by sending a CHUNK_REQUEST addressed to the
chunk's DAG (``CID | NID : HID``).  Whatever device first resolves the
CID — an edge cache holding the staged chunk, or the origin server via
the fallback path — answers by streaming the chunk back over a
:class:`~repro.transport.reliable.SenderSession`.  The request is
retransmitted until data starts flowing; the received chunk is hash-
verified against its CID before the fetch completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.errors import ChunkIntegrityError, TransportError
from repro.sim import Simulator
from repro.transport.config import TransportConfig
from repro.transport.reliable import ReceiverSession, TransportEndpoint, new_session_id
from repro.xia.dag import DagAddress
from repro.xia.ids import XID
from repro.xia.packet import Packet, PacketType

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Port
    from repro.net.nodes import Host
    from repro.xcache.store import ContentStore
    from repro.xia.router import XIARouter


@dataclass
class FetchOutcome:
    """What a completed chunk fetch reports back to the application."""

    cid: XID
    bytes_received: int
    duration: float
    request_attempts: int
    served_by_hid: Optional[XID]
    served_by_nid: Optional[XID]
    #: Time from (final) request to first data packet — the client's
    #: working estimate of the RTT to wherever the chunk came from.
    first_data_latency: float
    #: The received (and CID-verified) chunk object, when the transfer
    #: carried one.
    chunk: Optional[object] = None

    @property
    def throughput_bps(self) -> float:
        if self.duration <= 0:
            return float("inf")
        return self.bytes_received * 8 / self.duration


class ChunkFetcher:
    """Client-side fetch engine: request, receive, verify."""

    def __init__(
        self,
        sim: Simulator,
        endpoint: TransportEndpoint,
        config: Optional[TransportConfig] = None,
        wait_for_connectivity=None,
    ) -> None:
        self.sim = sim
        self.endpoint = endpoint
        self.config = config or endpoint.config
        #: Optional hook: returns None when the client is online, or an
        #: event that fires on (re)attachment.  Requests are deferred
        #: while offline instead of burning the retry budget.
        self.wait_for_connectivity = wait_for_connectivity
        self.fetches_started = 0
        self.fetches_completed = 0
        self.fetches_failed = 0

    def fetch(self, address: DagAddress, local_dag: Optional[DagAddress] = None):
        """Process: fetch the chunk at ``address``; returns FetchOutcome.

        Yields inside a simulation process.  Raises
        :class:`TransportError` when the request cannot be answered
        within the retry budget.
        """
        config = self.config
        started_at = self.sim.now
        self.fetches_started += 1
        if config.per_chunk_overhead > 0:
            # Client-side chunk-context setup (daemon IPC round trips).
            yield self.sim.timeout(config.per_chunk_overhead)
        session_id = new_session_id()
        receiver = self.endpoint.open_receiver(session_id, config=config)

        attempts = 0
        last_request_at = started_at
        while not receiver.started.triggered:
            if self.wait_for_connectivity is not None:
                gate = self.wait_for_connectivity()
                if gate is not None:
                    yield self.sim.any_of([gate, receiver.started])
                    continue
            if attempts >= config.request_retries:
                self.endpoint.close_session(session_id)
                self.fetches_failed += 1
                raise TransportError(
                    f"chunk request for {address.intent.short} got no answer "
                    f"after {attempts} attempts"
                )
            attempts += 1
            last_request_at = self.sim.now
            self._send_request(address, session_id, local_dag)
            yield self.sim.any_of(
                [receiver.started, self.sim.timeout(config.request_timeout)]
            )

        first_data_latency = self.sim.now - last_request_at
        yield receiver.done
        meta = receiver.first_data_meta or {}

        # Receiver-side CID verification (hashing the reassembled chunk).
        if config.verify_rate != float("inf") and receiver.bytes_received > 0:
            yield self.sim.timeout(receiver.bytes_received / config.verify_rate)
        chunk = meta.get("chunk")
        if chunk is not None and not chunk.verify(address.intent):
            self.fetches_failed += 1
            raise ChunkIntegrityError(
                f"chunk from {meta.get('server_hid')} does not hash to "
                f"{address.intent.short}"
            )

        self.fetches_completed += 1
        return FetchOutcome(
            cid=address.intent,
            bytes_received=receiver.bytes_received,
            duration=self.sim.now - started_at,
            request_attempts=attempts,
            served_by_hid=meta.get("server_hid"),
            served_by_nid=meta.get("server_nid"),
            first_data_latency=first_data_latency,
            chunk=chunk,
        )

    def _send_request(
        self,
        address: DagAddress,
        session_id: int,
        local_dag: Optional[DagAddress],
    ) -> None:
        host = self.endpoint.host
        if local_dag is None:
            nid = getattr(host, "nid", None) or getattr(host, "current_nid", None)
            local_dag = DagAddress.host(host.hid, nid)
        request = Packet.acquire(
            PacketType.CHUNK_REQUEST,
            dst=address,
            src=local_dag,
            payload={"session": session_id},
            size_bytes=self.config.ack_bytes + 40,
            created_at=self.sim.now,
        )
        host.send(request)


class CacheDaemon:
    """Serves CHUNK_REQUESTs from a content store (XCache's serve path).

    Attach to the origin server host (all published chunks) or to an
    edge router (staged/cached chunks).  Duplicate requests for an
    in-flight session are absorbed by the sender's idempotent start.
    """

    def __init__(
        self,
        sim: Simulator,
        node: "Host",
        store: "ContentStore",
        endpoint: TransportEndpoint,
        nid: Optional[XID] = None,
        unpin_on_serve: bool = False,
    ) -> None:
        self.sim = sim
        self.node = node
        self.store = store
        self.endpoint = endpoint
        self.nid = nid if nid is not None else getattr(node, "nid", None)
        self.unpin_on_serve = unpin_on_serve
        self.requests_served = 0
        self.requests_missed = 0
        self._install()

    def _install(self) -> None:
        from repro.xia.router import XIARouter

        if isinstance(self.node, XIARouter):
            self.node.content_store = self.store
            self.node.cid_request_handler = self.handle_request
        else:
            self.node.register_handler(PacketType.CHUNK_REQUEST, self.handle_request)

    def handle_request(self, packet: Packet, port: "Port") -> None:
        # Terminal consumer of the request packet on every branch; the
        # sender session keeps the client's DAG (a shared immutable
        # object), never the packet.
        cid = packet.dst.intent
        chunk = self.store.peek(cid)
        if chunk is None:
            self.requests_missed += 1
            packet.release()
            return
        self.store.get(cid)  # count the hit / refresh recency
        session_id = int(packet.payload["session"])
        already_running = session_id in self.endpoint.senders
        sender = self.endpoint.start_send(
            session_id,
            dst=packet.src,
            src=self._local_dag(),
            total_bytes=chunk.size_bytes,
            meta={
                "chunk": chunk,
                "server_hid": self.node.hid,
                "server_nid": self.nid,
            },
        )
        if already_running:
            # A re-sent request: the client may have moved before any
            # data reached it — restart the stream toward its current
            # address.
            sender.redirect(packet.src)
        if not already_running:
            self.requests_served += 1
            if self.unpin_on_serve:
                self.store.unpin(cid)
        packet.release()

    def _local_dag(self) -> DagAddress:
        return DagAddress.host(self.node.hid, self.nid)
