"""Transports: the TCP-like reliable protocols XIA runs over.

XIA byte streams (Xstream) and chunk transfers (XChunkP) "use the same
underlying TCP-like transport protocol" (paper §IV-B).  This package
implements that transport at two fidelities:

- :mod:`repro.transport.reliable` — packet-level: congestion window,
  slow start/AIMD, fast retransmit, RTO backoff, session migration;
  runs over the :mod:`repro.net` substrate.
- :mod:`repro.transport.flowmodel` — analytic: closed-form transfer
  durations (slow-start ramp + Mathis steady state) for the large
  parameter sweeps.

:mod:`repro.transport.config` holds the protocol presets whose
constants are calibrated against the paper's Fig. 5 benchmark (kernel
TCP vs the user-level XIA daemon), and :mod:`repro.transport.chunkfetch`
implements the CID request/serve protocol between clients and caches.
"""

from repro.transport.config import (
    KERNEL_TCP,
    XIA_CHUNK,
    XIA_STREAM,
    TransportConfig,
)
from repro.transport.reliable import TransportEndpoint
from repro.transport.chunkfetch import CacheDaemon, ChunkFetcher, FetchOutcome
from repro.transport.flowmodel import FlowModel, PathCharacteristics

__all__ = [
    "CacheDaemon",
    "ChunkFetcher",
    "FetchOutcome",
    "FlowModel",
    "KERNEL_TCP",
    "PathCharacteristics",
    "TransportConfig",
    "TransportEndpoint",
    "XIA_CHUNK",
    "XIA_STREAM",
]
