"""XChunkP: downloading content as a sequence of chunk transfers.

Each chunk is requested, transferred and CID-verified independently —
"the XChunkP transfer is broken up in chunks that are fetched
separately and this comes with larger protocol overhead" (paper
§IV-B).  This is the static (no-mobility) chunk downloader used by the
Fig. 5 benchmark; the mobile Xftp application in :mod:`repro.apps.ftp`
adds connectivity awareness on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim import Simulator
from repro.transport.chunkfetch import ChunkFetcher, FetchOutcome
from repro.transport.config import TransportConfig
from repro.transport.reliable import TransportEndpoint
from repro.xcache.publisher import PublishedContent


@dataclass
class ChunkedDownloadResult:
    """Outcome of a whole-content chunked download."""

    bytes_received: int
    duration: float
    chunk_outcomes: list[FetchOutcome] = field(default_factory=list)

    @property
    def throughput_bps(self) -> float:
        return self.bytes_received * 8 / self.duration if self.duration else 0.0


class XChunkPClient:
    """Sequentially fetches every chunk of a published content."""

    def __init__(
        self,
        sim: Simulator,
        endpoint: TransportEndpoint,
        config: TransportConfig,
    ) -> None:
        self.sim = sim
        self.fetcher = ChunkFetcher(sim, endpoint, config=config)

    def download(self, content: PublishedContent):
        """Process: fetch all chunks in order; returns the result."""
        started = self.sim.now
        outcomes: list[FetchOutcome] = []
        total = 0
        for address in content.addresses:
            outcome: FetchOutcome = yield self.sim.process(
                self.fetcher.fetch(address)
            )
            outcomes.append(outcome)
            total += outcome.bytes_received
        return ChunkedDownloadResult(
            bytes_received=total,
            duration=self.sim.now - started,
            chunk_outcomes=outcomes,
        )
