"""Analytic (flow-level) transfer model.

The Fig. 6 parameter sweeps move 64 MB per run across many
configurations and seeds; simulating every 1.5 KB segment would be
needlessly slow.  This model computes transfer durations in closed
form from the same ingredients the packet-level transport exhibits:

- a slow-start ramp (window doubling per RTT from the initial cwnd),
- a steady-state rate bounded by the bottleneck link, the Mathis
  loss/RTT relation, and the user-level daemon's per-packet pacing cap,
- per-transfer fixed costs (request handshake, verification).

``FlowModel.bytes_in`` inverts the duration function so an in-progress
transfer can be suspended at a disconnection with the right partial
progress, then resumed (with a fresh slow-start and migration cost) —
the mechanism behind Fig. 6(c).

The agreement between this model and the packet-level transport is
checked by an ablation bench (see DESIGN.md §4.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.net.emulation import mathis_throughput
from repro.transport.config import TransportConfig
from repro.util.validation import check_fraction, check_non_negative, check_positive


@dataclass(frozen=True)
class PathCharacteristics:
    """What a transport path looks like to one flow."""

    #: Bottleneck rate available to this flow, bits/second (payload
    #: goodput after MAC/framing efficiency).
    bottleneck_bps: float
    #: Base round-trip time, seconds.
    rtt: float
    #: Transport-visible (residual) loss probability.
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        check_positive("bottleneck_bps", self.bottleneck_bps)
        check_positive("rtt", self.rtt)
        check_fraction("loss_rate", self.loss_rate)

    def joined(self, other: "PathCharacteristics") -> "PathCharacteristics":
        """Concatenate two path segments (client–edge + edge–server)."""
        return PathCharacteristics(
            bottleneck_bps=min(self.bottleneck_bps, other.bottleneck_bps),
            rtt=self.rtt + other.rtt,
            loss_rate=1 - (1 - self.loss_rate) * (1 - other.loss_rate),
        )


class FlowModel:
    """Closed-form transfer timing for one transport configuration."""

    def __init__(self, config: TransportConfig) -> None:
        self.config = config

    # -- rates -----------------------------------------------------------

    def steady_rate(self, path: PathCharacteristics) -> float:
        """Sustained payload rate (bits/s) on ``path``."""
        config = self.config
        efficiency = config.mss_bytes / config.segment_bytes
        candidates = [path.bottleneck_bps * efficiency]
        if path.loss_rate > 0:
            candidates.append(
                mathis_throughput(config.mss_bytes, path.rtt, path.loss_rate)
            )
        if config.per_packet_cost > 0:
            candidates.append(config.mss_bytes * 8 / config.per_packet_cost)
        return max(min(candidates), 1.0)

    # -- durations ----------------------------------------------------------

    def transfer_time(
        self,
        num_bytes: float,
        path: PathCharacteristics,
        include_request: bool = False,
        include_verify: bool = False,
    ) -> float:
        """Seconds to move ``num_bytes`` of payload over ``path``."""
        check_non_negative("num_bytes", num_bytes)
        if num_bytes == 0:
            return 0.0
        duration = self._ramped_time(num_bytes, path)
        if include_request:
            duration += path.rtt  # request/first-response handshake
        if include_verify and self.config.verify_rate != float("inf"):
            duration += num_bytes / self.config.verify_rate
        return duration

    def bytes_in(self, duration: float, path: PathCharacteristics) -> float:
        """Payload bytes delivered within ``duration`` (inverse of
        :meth:`transfer_time` without fixed costs)."""
        check_non_negative("duration", duration)
        if duration == 0:
            return 0.0
        low, high = 0.0, max(
            self.steady_rate(path) * duration / 8.0 * 2 + self.config.mss_bytes, 1.0
        )
        # _ramped_time is strictly increasing in bytes: bisect.
        for _ in range(64):
            mid = (low + high) / 2
            if self._ramped_time(mid, path) <= duration:
                low = mid
            else:
                high = mid
        return low

    # -- internals ---------------------------------------------------------------

    def _ramped_time(self, num_bytes: float, path: PathCharacteristics) -> float:
        """Slow-start ramp followed by steady state."""
        if num_bytes <= 0:
            return 0.0
        config = self.config
        rate = self.steady_rate(path)
        rtt = path.rtt
        mss_bits = config.mss_bytes * 8

        # Steady-state window (segments per RTT) and ramp geometry.
        steady_window = max(rate * rtt / mss_bits, config.initial_cwnd)
        cwnd = float(config.initial_cwnd)
        sent_bits = 0.0
        elapsed = 0.0
        total_bits = num_bytes * 8

        while cwnd < steady_window:
            round_bits = cwnd * mss_bits
            if sent_bits + round_bits >= total_bits:
                # Finishes inside this slow-start round.  The round
                # delivers its window over one RTT; interpolate.
                fraction = (total_bits - sent_bits) / round_bits
                return elapsed + rtt * fraction
            sent_bits += round_bits
            elapsed += rtt
            cwnd = min(cwnd * 2, steady_window)

        remaining = total_bits - sent_bits
        return elapsed + remaining / rate

    def __repr__(self) -> str:
        return f"<FlowModel {self.config.name}>"


def effective_wireless_goodput(
    mac_rate_bps: float,
    loss_rate: float,
    max_retries: int = 4,
    frame_overhead_s: float = 150e-6,
    frame_bytes: int = 1514,
) -> float:
    """Payload-carrying capacity of an ARQ wireless link under loss.

    Each frame occupies ``E[attempts]`` transmissions of airtime; the
    expected attempts for per-attempt loss ``p`` truncated at
    ``max_retries`` retries is ``(1 - p^(k+1)) / (1 - p)``.
    """
    check_positive("mac_rate_bps", mac_rate_bps)
    check_fraction("loss_rate", loss_rate)
    if loss_rate >= 1.0:
        raise ConfigurationError("loss_rate must be < 1 for a usable link")
    attempts = (1 - loss_rate ** (max_retries + 1)) / (1 - loss_rate)
    frame_airtime = frame_bytes * 8 / mac_rate_bps + frame_overhead_s
    per_frame = attempts * frame_airtime
    return frame_bytes * 8 / per_frame


def residual_loss(loss_rate: float, max_retries: int = 4) -> float:
    """Probability a frame fails all ARQ attempts (i.i.d. approximation).

    Real fading is bursty, so the bursty models in
    :mod:`repro.net.loss` produce substantially higher residual loss
    than this i.i.d. bound; flow-level scenarios therefore scale this
    up by a burstiness factor (see
    :mod:`repro.experiments.calibration`).
    """
    check_fraction("loss_rate", loss_rate)
    return loss_rate ** (max_retries + 1)
