"""Xstream: XIA byte-stream sessions.

A byte stream is modeled as a single reliable bulk transfer negotiated
with one request (the stream handshake) — protocol-wise identical to a
chunk transfer of the whole object, minus per-chunk verification.  The
same machinery with the ``KERNEL_TCP`` config is the "Linux TCP
(iPerf)" baseline of the paper's Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import Simulator
from repro.transport.chunkfetch import ChunkFetcher, FetchOutcome
from repro.transport.config import TransportConfig
from repro.transport.reliable import TransportEndpoint
from repro.xia.dag import DagAddress


@dataclass
class StreamResult:
    """Application-level outcome of a byte-stream download."""

    bytes_received: int
    duration: float
    throughput_bps: float


class XstreamClient:
    """Downloads one object as a single byte-stream session."""

    def __init__(
        self,
        sim: Simulator,
        endpoint: TransportEndpoint,
        config: TransportConfig,
    ) -> None:
        self.sim = sim
        self.fetcher = ChunkFetcher(
            sim, endpoint, config=config.with_(verify_rate=float("inf"))
        )

    def download(self, address: DagAddress):
        """Process: stream the object at ``address``; returns StreamResult."""
        started = self.sim.now
        outcome: FetchOutcome = yield self.sim.process(self.fetcher.fetch(address))
        duration = self.sim.now - started
        return StreamResult(
            bytes_received=outcome.bytes_received,
            duration=duration,
            throughput_bps=outcome.bytes_received * 8 / duration if duration else 0.0,
        )
