"""Transport protocol parameters and calibrated presets.

The presets encode the performance character of each stack in the
paper's testbed (Fig. 5):

- ``KERNEL_TCP``: native Linux TCP — small headers, delayed ACKs,
  negligible per-packet CPU;
- ``XIA_STREAM``: the XIA prototype's transport, running in a
  user-level Click daemon — large DAG headers (two full DAGs per
  packet), an ACK per packet, and a per-packet daemon cost that caps
  the send rate at ~66 Mbps for full-size segments;
- ``XIA_CHUNK``: same stack, plus the chunk protocol's per-chunk
  request handshake and receiver-side content verification (hashing
  the chunk to check its CID).

The numeric calibration story lives in
:mod:`repro.experiments.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TransportConfig:
    """Parameters of one reliable-transport stack."""

    name: str
    #: Payload bytes per data segment.
    mss_bytes: int = 1290
    #: Header bytes per data segment (link + network + transport).
    header_bytes: int = 224
    #: Size of a pure ACK packet on the wire.
    ack_bytes: int = 90
    #: Send a cumulative ACK every N in-order data segments.
    ack_every: int = 1
    #: Initial congestion window (segments).
    initial_cwnd: float = 2.0
    #: Initial slow-start threshold (segments).
    initial_ssthresh: float = 64.0
    #: Per-data-packet CPU cost at an endpoint (pacing floor), seconds.
    per_packet_cost: float = 0.0
    #: Minimum / maximum retransmission timeout, seconds.
    min_rto: float = 0.2
    max_rto: float = 8.0
    #: Receiver-side content verification rate in bytes/second; applied
    #: by the chunk protocol.  ``inf`` disables verification cost.
    verify_rate: float = float("inf")
    #: Chunk-request retransmission timeout and retry budget.
    request_timeout: float = 1.0
    request_retries: int = 30
    #: Fixed cost of an active transport-session migration (paper §IV-C:
    #: "a fixed overhead of 1 or 2 sec").
    migration_delay: float = 1.5
    #: Fixed per-chunk client-side cost: XCache chunk-context setup and
    #: the client<->daemon IPC round trips of one XfetchChunk call.
    #: This is what makes small chunks expensive for *both* systems in
    #: the paper's Fig. 6(a) ("the control plane messages introduce
    #: more overhead with smaller chunks").
    per_chunk_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.mss_bytes <= 0 or self.header_bytes < 0:
            raise ConfigurationError("invalid segment geometry")
        if self.ack_every < 1:
            raise ConfigurationError("ack_every must be >= 1")
        if self.initial_cwnd < 1:
            raise ConfigurationError("initial_cwnd must be >= 1")
        if self.min_rto <= 0 or self.max_rto < self.min_rto:
            raise ConfigurationError("invalid RTO bounds")

    @property
    def segment_bytes(self) -> int:
        """Full on-wire size of a data segment."""
        return self.mss_bytes + self.header_bytes

    def with_(self, **changes) -> "TransportConfig":
        """A modified copy (keyword arguments as for ``dataclasses.replace``)."""
        return replace(self, **changes)

    def scaled(self, factor: int) -> "TransportConfig":
        """A coarse-grained copy: segments ``factor`` times bigger.

        Scales every per-segment quantity (payload, headers, endpoint
        cost) together, so link efficiency, the CPU throughput cap and
        airtime per byte are preserved while the simulation pushes
        ``factor`` times fewer packets.  Used by the big benchmark
        sweeps; the Fig. 5 calibration bench always runs at scale 1,
        and an ablation bench checks scale invariance.
        """
        if factor < 1 or int(factor) != factor:
            raise ConfigurationError(f"scale factor must be a positive int, got {factor}")
        if factor == 1:
            return self
        return self.with_(
            name=f"{self.name}-x{factor}",
            mss_bytes=self.mss_bytes * factor,
            header_bytes=self.header_bytes * factor,
            ack_bytes=self.ack_bytes * factor,
            per_packet_cost=self.per_packet_cost * factor,
        )


#: Native Linux TCP over Ethernet: 1460B payload in 1514B frames,
#: delayed ACKs, kernel-level per-packet cost.
KERNEL_TCP = TransportConfig(
    name="linux-tcp",
    mss_bytes=1460,
    header_bytes=54,
    ack_bytes=60,
    ack_every=2,
    initial_cwnd=10.0,       # modern kernels: IW10
    per_packet_cost=1.5e-6,
)

#: XIA's user-level transport: two serialized DAGs per header, an ACK
#: per segment, and the Click daemon's per-packet cost (calibrated so a
#: wired bulk transfer tops out near the paper's 66 Mbps).
XIA_STREAM = TransportConfig(
    name="xstream",
    mss_bytes=1290,
    header_bytes=224,
    ack_bytes=100,
    ack_every=1,
    initial_cwnd=2.0,
    per_packet_cost=150e-6,
)

#: The chunk transfer protocol: Xstream's stack plus per-chunk request
#: handshakes and CID verification at the receiver (~50 MB/s hashing).
XIA_CHUNK = XIA_STREAM.with_(
    name="xchunkp",
    verify_rate=100e6,      # SHA-1 at 100 MB/s
    per_chunk_overhead=25e-3,
)
