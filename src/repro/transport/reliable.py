"""Packet-level reliable transport (the XIA "TCP-like" protocol).

One :class:`TransportEndpoint` lives on each host (or router — XCache
terminates chunk transfers on routers).  A bulk transfer is a pair of
sessions: a :class:`SenderSession` on the data source streaming DATA
segments under a congestion window (slow start, AIMD, fast retransmit,
exponential RTO backoff), and a :class:`ReceiverSession` on the sink
sending cumulative ACKs.  Sessions survive client mobility through
XIA's active session migration: the receiver announces its new address
with a MIGRATE packet and the sender resumes from the last
acknowledged byte after a fixed migration cost.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Optional, TYPE_CHECKING

from repro.errors import TransportError
from repro.obs.events import (
    SegmentRetransmitted,
    SegmentTimeout,
    SessionMigrated,
)
from repro.sim import Event, Simulator
from repro.transport.config import TransportConfig
from repro.xia.dag import DagAddress
from repro.xia.packet import Packet, PacketType

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Port
    from repro.net.nodes import Host

_session_ids = itertools.count(1)


def new_session_id() -> int:
    """Globally unique transport session identifier."""
    return next(_session_ids)


class TransportEndpoint:
    """Per-host transport instance: creates and demuxes sessions."""

    def __init__(self, sim: Simulator, host: "Host", config: TransportConfig) -> None:
        self.sim = sim
        self.host = host
        self.config = config
        self.senders: dict[int, SenderSession] = {}
        self.receivers: dict[int, ReceiverSession] = {}

    # -- session factories ---------------------------------------------------

    def start_send(
        self,
        session_id: int,
        dst: DagAddress,
        src: DagAddress,
        total_bytes: int,
        meta: Optional[dict[str, Any]] = None,
        config: Optional[TransportConfig] = None,
    ) -> "SenderSession":
        """Begin streaming ``total_bytes`` to ``dst``; idempotent per id."""
        existing = self.senders.get(session_id)
        if existing is not None:
            return existing
        session = SenderSession(
            self, session_id, dst, src, total_bytes, meta or {}, config or self.config
        )
        self.senders[session_id] = session
        self.host.register_session(session_id, session.on_packet)
        session.start()
        return session

    def open_receiver(
        self,
        session_id: int,
        config: Optional[TransportConfig] = None,
    ) -> "ReceiverSession":
        session = ReceiverSession(self, session_id, config or self.config)
        self.receivers[session_id] = session
        self.host.register_session(session_id, session.on_packet)
        return session

    def close_session(self, session_id: int) -> None:
        self.senders.pop(session_id, None)
        self.receivers.pop(session_id, None)
        self.host.unregister_session(session_id)

    # -- mobility ------------------------------------------------------------

    def migrate_receivers(self, new_local_dag: DagAddress) -> list["Event"]:
        """Announce a new client address on every active receive session.

        Returns one event per session, firing when that session's
        migration is acknowledged.  Call after re-attaching to a
        network (XIA active session migration, Snoeren-style).
        """
        return [
            self.sim.process(receiver.migrate(new_local_dag))
            for receiver in list(self.receivers.values())
            if not receiver.done.triggered
        ]


class SenderSession:
    """The data-source half of a reliable bulk transfer."""

    def __init__(
        self,
        endpoint: TransportEndpoint,
        session_id: int,
        dst: DagAddress,
        src: DagAddress,
        total_bytes: int,
        meta: dict[str, Any],
        config: TransportConfig,
    ) -> None:
        if total_bytes <= 0:
            raise TransportError("total_bytes must be positive")
        self.endpoint = endpoint
        self.sim = endpoint.sim
        self.session_id = session_id
        self.dst = dst
        self.src = src
        self.total_bytes = int(total_bytes)
        self.meta = meta
        self.config = config
        self.total_segments = math.ceil(total_bytes / config.mss_bytes)

        # Congestion state.
        self.cwnd = float(config.initial_cwnd)
        self.ssthresh = float(config.initial_ssthresh)
        self.head = 0            # lowest unacknowledged segment index
        self.next_seq = 0        # next segment index to transmit
        self.dup_acks = 0
        self.in_recovery = False

        # RTT estimation (Jacobson/Karels).
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = config.min_rto * 5  # conservative until first sample
        self._send_times: dict[int, float] = {}
        self._timer_version = 0

        # Stats.
        self.started_at = self.sim.now
        self.retransmissions = 0
        self.timeouts = 0
        self.migrations = 0

        #: Fires with this session when the final segment is acked.
        self.done: Event = self.sim.event(name=f"send-done-{session_id}")
        self._wakeup: Optional[Event] = None
        self._paused = False
        # One shared payload dict for all full-size segments (receivers
        # never mutate payloads); only the final, short segment differs.
        self._full_payload = {
            "total_segments": self.total_segments,
            "total_bytes": self.total_bytes,
            "payload_bytes": config.mss_bytes,
            **meta,
        }

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self.sim.process(self._sender_loop())
        self._arm_timer()

    @property
    def completed(self) -> bool:
        return self.head >= self.total_segments

    @property
    def inflight(self) -> int:
        return self.next_seq - self.head

    def _segment_payload_bytes(self, seq: int) -> int:
        if seq == self.total_segments - 1:
            remainder = self.total_bytes - seq * self.config.mss_bytes
            return remainder if remainder > 0 else self.config.mss_bytes
        return self.config.mss_bytes

    def _sender_loop(self):
        config = self.config
        while not self.completed:
            can_send = (
                not self._paused
                and self.next_seq < self.total_segments
                and self.inflight < int(self.cwnd)
            )
            if can_send:
                self._emit(self.next_seq)
                self.next_seq += 1
                if config.per_packet_cost > 0:
                    yield self.sim.timeout(config.per_packet_cost)
            else:
                self._wakeup = self.sim.event(name="sender-wakeup")
                yield self._wakeup
        if not self.done.triggered:
            self.done.succeed(self)
        self.endpoint.close_session(self.session_id)

    def _wake(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
            self._wakeup = None

    def _emit(self, seq: int, retransmit: bool = False) -> None:
        config = self.config
        payload_bytes = self._segment_payload_bytes(seq)
        if payload_bytes == config.mss_bytes:
            payload = self._full_payload
        else:
            payload = dict(self._full_payload, payload_bytes=payload_bytes)
        packet = Packet.acquire(
            PacketType.DATA,
            dst=self.dst,
            src=self.src,
            payload=payload,
            size_bytes=payload_bytes + config.header_bytes,
            session_id=self.session_id,
            seq=seq,
            created_at=self.sim.now,
        )
        if retransmit:
            self.retransmissions += 1
            self._send_times.pop(seq, None)  # Karn: no RTT sample on rexmit
            probe = self.sim.probe
            if probe.active:
                probe.emit(
                    SegmentRetransmitted(session=self.session_id, seq=seq)
                )
        else:
            self._send_times[seq] = self.sim.now
        self.endpoint.host.send(packet)

    # -- incoming packets -----------------------------------------------------

    def on_packet(self, packet: Packet, port: "Port") -> None:
        # This handler is each packet's terminal consumer: nothing
        # retains the object afterwards, so it goes back to the pool.
        if packet.ptype is PacketType.ACK:
            self._on_ack(packet)
            packet.release()
        elif packet.ptype is PacketType.MIGRATE:
            self._on_migrate(packet)
            packet.release()

    def _on_ack(self, packet: Packet) -> None:
        if self.done.triggered:
            return
        ack = int(packet.payload["ack"])
        if ack > self.head:
            newly_acked = ack - self.head
            self._sample_rtt(ack - 1)
            self.head = ack
            self.dup_acks = 0
            if self.in_recovery:
                self.in_recovery = False
                self.cwnd = self.ssthresh
            else:
                self._grow_cwnd(newly_acked)
            if self.next_seq < self.head:
                self.next_seq = self.head
            self._arm_timer()
            if self.completed:
                self._timer_version += 1
                self._wake()
                if not self.done.triggered:
                    self.done.succeed(self)
            else:
                self._wake()
        elif ack == self.head and self.inflight > 0:
            self.dup_acks += 1
            if self.dup_acks == 3 and not self.in_recovery:
                self._fast_retransmit()

    def _sample_rtt(self, seq: int) -> None:
        sent_at = self._send_times.pop(seq, None)
        if sent_at is None:
            return
        sample = self.sim.now - sent_at
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            alpha, beta = 0.125, 0.25
            self.rttvar = (1 - beta) * self.rttvar + beta * abs(self.srtt - sample)
            self.srtt = (1 - alpha) * self.srtt + alpha * sample
        self.rto = min(
            max(self.srtt + 4 * self.rttvar, self.config.min_rto),
            self.config.max_rto,
        )

    def _grow_cwnd(self, newly_acked: int) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd + newly_acked, self.ssthresh + newly_acked)
        else:
            self.cwnd += newly_acked / self.cwnd

    def _fast_retransmit(self) -> None:
        self.ssthresh = max(self.inflight / 2.0, 2.0)
        self.cwnd = self.ssthresh + 3
        self.in_recovery = True
        self._emit(self.head, retransmit=True)
        self._arm_timer()

    # -- timers ---------------------------------------------------------------

    def _arm_timer(self) -> None:
        self._timer_version += 1
        if self.completed or self._paused:
            return
        self.sim.process(self._rto_watch(self._timer_version, self.rto))

    def _rto_watch(self, version: int, delay: float):
        yield self.sim.timeout(delay)
        if version != self._timer_version or self.completed or self._paused:
            return
        self._on_timeout()

    def _on_timeout(self) -> None:
        self.timeouts += 1
        probe = self.sim.probe
        if probe.active:
            probe.emit(
                SegmentTimeout(session=self.session_id, seq=self.head, rto=self.rto)
            )
        self.ssthresh = max(self.inflight / 2.0, 2.0)
        self.cwnd = 1.0
        self.dup_acks = 0
        self.in_recovery = False
        self.rto = min(self.rto * 2, self.config.max_rto)
        self._emit(self.head, retransmit=True)
        self.next_seq = self.head + 1  # go-back-N after a timeout
        self._arm_timer()
        self._wake()

    def redirect(self, new_dst: DagAddress) -> None:
        """Point the stream at a new client address immediately.

        Used when a re-sent chunk request arrives from a different
        network than the one we have been sending to — the client moved
        before any data reached it, so there is no receiver state to
        migrate; just restart toward the new location.
        """
        if self.done.triggered or new_dst == self.dst:
            return
        self.dst = new_dst
        self.cwnd = float(self.config.initial_cwnd)
        self.dup_acks = 0
        self.in_recovery = False
        self.next_seq = self.head
        self.rto = max(self.srtt * 2 if self.srtt else self.config.min_rto,
                       self.config.min_rto)
        self._send_times.clear()
        self._arm_timer()
        self._wake()

    # -- migration --------------------------------------------------------------

    def _on_migrate(self, packet: Packet) -> None:
        new_dag = packet.payload["new_dag"]
        already_here = new_dag == self.dst
        self.dst = new_dag
        ack = Packet.acquire(
            PacketType.MIGRATE_ACK,
            dst=new_dag,
            src=self.src,
            payload={"session": self.session_id},
            size_bytes=self.config.ack_bytes,
            session_id=self.session_id,
            created_at=self.sim.now,
        )
        self.endpoint.host.send(ack)
        if self.done.triggered or already_here:
            return
        self.migrations += 1
        probe = self.sim.probe
        if probe.active:
            probe.emit(SessionMigrated(session=self.session_id))
        self.sim.process(self._resume_after_migration())

    def _resume_after_migration(self):
        self._paused = True
        self._timer_version += 1
        yield self.sim.timeout(self.config.migration_delay)
        self._paused = False
        self.cwnd = float(self.config.initial_cwnd)
        self.ssthresh = float(self.config.initial_ssthresh)
        self.dup_acks = 0
        self.in_recovery = False
        self.next_seq = self.head
        self.rto = max(self.srtt * 2 if self.srtt else self.config.min_rto,
                       self.config.min_rto)
        self._send_times.clear()
        self._arm_timer()
        self._wake()

    def __repr__(self) -> str:
        return (
            f"<SenderSession {self.session_id} {self.head}/{self.total_segments} "
            f"cwnd={self.cwnd:.1f}>"
        )


class ReceiverSession:
    """The sink half: reassembly state and cumulative ACKs."""

    def __init__(
        self,
        endpoint: TransportEndpoint,
        session_id: int,
        config: TransportConfig,
    ) -> None:
        self.endpoint = endpoint
        self.sim = endpoint.sim
        self.session_id = session_id
        self.config = config
        self.total_segments: Optional[int] = None
        self.highest_inorder = 0         # count of contiguous segments received
        self._out_of_order: set[int] = set()
        self.bytes_received = 0
        self.duplicate_segments = 0
        self._since_ack = 0
        self.peer_dag: Optional[DagAddress] = None
        self.first_data_meta: Optional[dict[str, Any]] = None
        #: Fires on the first DATA packet (stops request retries).
        self.started: Event = self.sim.event(name=f"recv-start-{session_id}")
        #: Fires when the transfer completes, with this session.
        self.done: Event = self.sim.event(name=f"recv-done-{session_id}")

    @property
    def completed(self) -> bool:
        return (
            self.total_segments is not None
            and self.highest_inorder >= self.total_segments
        )

    # -- incoming ----------------------------------------------------------

    def on_packet(self, packet: Packet, port: "Port") -> None:
        # Terminal consumer: _on_data copies what it keeps (the meta
        # dict) or keeps shared immutable objects (the peer DAG), so
        # the packet itself recycles here.
        if packet.ptype is PacketType.DATA:
            self._on_data(packet)
            packet.release()
        elif packet.ptype is PacketType.MIGRATE_ACK:
            # handled by the pending migrate() process via this event
            if self._migrate_acked is not None and not self._migrate_acked.triggered:
                self._migrate_acked.succeed()
            packet.release()

    _migrate_acked: Optional[Event] = None

    def _on_data(self, packet: Packet) -> None:
        if self.done.triggered:
            self._send_ack(force=True)  # stale retransmission: re-ack
            return
        if self.total_segments is None:
            self.total_segments = int(packet.payload["total_segments"])
            self.first_data_meta = dict(packet.payload)
        self.peer_dag = packet.src
        if not self.started.triggered:
            self.started.succeed(self)

        seq = packet.seq
        duplicate = seq < self.highest_inorder or seq in self._out_of_order
        if duplicate:
            self.duplicate_segments += 1
            self._send_ack(force=True)
            return
        self.bytes_received += int(packet.payload.get("payload_bytes", 0))
        if seq == self.highest_inorder:
            self.highest_inorder += 1
            while self.highest_inorder in self._out_of_order:
                self._out_of_order.discard(self.highest_inorder)
                self.highest_inorder += 1
            self._since_ack += 1
            if self.completed:
                self._send_ack(force=True)
                self.done.succeed(self)
                self.endpoint.close_session(self.session_id)
            elif self._since_ack >= self.config.ack_every:
                self._send_ack()
        else:
            self._out_of_order.add(seq)
            self._send_ack(force=True)  # dup-ack signals the gap

    def _send_ack(self, force: bool = False) -> None:
        if self.peer_dag is None:
            return
        self._since_ack = 0
        ack = Packet.acquire(
            PacketType.ACK,
            dst=self.peer_dag,
            src=self._local_dag(),
            payload={"ack": self.highest_inorder},
            size_bytes=self.config.ack_bytes,
            session_id=self.session_id,
            created_at=self.sim.now,
        )
        self.endpoint.host.send(ack)

    def _local_dag(self) -> DagAddress:
        host = self.endpoint.host
        nid = getattr(host, "current_nid", None) or getattr(host, "nid", None)
        return DagAddress.host(host.hid, nid)

    # -- migration -------------------------------------------------------------

    def migrate(self, new_local_dag: DagAddress):
        """Process: announce our new address until the sender ACKs it."""
        if self.peer_dag is None or self.done.triggered:
            return True
        self._migrate_acked = self.sim.event(name=f"migrate-ack-{self.session_id}")
        attempts = 0
        while not self._migrate_acked.triggered and attempts < self.config.request_retries:
            attempts += 1
            packet = Packet.acquire(
                PacketType.MIGRATE,
                dst=self.peer_dag,
                src=new_local_dag,
                payload={"new_dag": new_local_dag, "session": self.session_id},
                size_bytes=self.config.ack_bytes,
                session_id=self.session_id,
                created_at=self.sim.now,
            )
            self.endpoint.host.send(packet)
            yield self.sim.any_of(
                [self._migrate_acked, self.sim.timeout(self.config.request_timeout)]
            )
        acked = self._migrate_acked.triggered
        self._migrate_acked = None
        return acked

    def __repr__(self) -> str:
        total = "?" if self.total_segments is None else self.total_segments
        return f"<ReceiverSession {self.session_id} {self.highest_inorder}/{total}>"
